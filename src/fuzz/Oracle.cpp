//===- fuzz/Oracle.cpp - Differential invariant oracles --------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "aos/AdaptiveSystem.h"
#include "experiments/Experiments.h"
#include "experiments/ParallelRunner.h"
#include "opt/Compiler.h"
#include "opt/InlineOracle.h"
#include "profiling/OverlapMetric.h"
#include "profiling/ProfileCodec.h"
#include "profiling/ProfileIO.h"
#include "profiling/ProfilerRegistry.h"
#include "vm/VirtualMachine.h"

#include <algorithm>
#include <sstream>

using namespace cbs;
using namespace cbs::fuzz;

Oracle::~Oracle() = default;

void OracleRegistry::add(std::unique_ptr<Oracle> O) {
  Oracles.push_back(std::move(O));
}

const Oracle *OracleRegistry::find(std::string_view Id) const {
  for (const std::unique_ptr<Oracle> &O : Oracles)
    if (Id == O->id())
      return O.get();
  return nullptr;
}

namespace {

/// Cycle budget for every oracle-internal run: generated programs are
/// small DAGs with bounded loops, so anything approaching this is a
/// generator bug worth flagging, not a workload.
constexpr uint64_t OracleMaxCycles = 200'000'000;

/// Everything one run yields that oracles compare.
struct RunResult {
  vm::RunState State = vm::RunState::Running;
  std::string Trap;
  std::vector<int64_t> Output;
  size_t HeapObjects = 0;
  uint64_t HeapBytes = 0;
  prof::DCGSnapshot Profile;
  uint64_t Samples = 0;
  uint64_t Calls = 0;
};

RunResult runProgram(const bc::Program &P, vm::VMConfig Config) {
  Config.MaxCycles = std::min(Config.MaxCycles, OracleMaxCycles);
  vm::VirtualMachine VM(P, Config);
  RunResult R;
  R.State = VM.run();
  R.Trap = VM.trapMessage();
  R.Output = VM.output();
  R.HeapObjects = VM.heap().numObjects();
  R.HeapBytes = VM.heap().bytesAllocated();
  R.Profile = VM.profile();
  R.Samples = VM.stats().SamplesTaken;
  R.Calls = VM.stats().CallsExecuted;
  return R;
}

/// "finished, printed [a b c], 12 objects / 96 bytes" — the compact
/// divergence description used by violation messages.
std::string describeRun(const RunResult &R) {
  std::ostringstream OS;
  OS << vm::runStateName(R.State);
  if (!R.Trap.empty())
    OS << " (" << R.Trap << ')';
  OS << ", " << R.Output.size() << " values printed, " << R.HeapObjects
     << " objects / " << R.HeapBytes << " heap bytes";
  return OS.str();
}

/// Checks \p Candidate against \p Base; returns "" or the divergence.
std::string compareRuns(const char *BaseName, const RunResult &Base,
                        const char *CandName, const RunResult &Cand) {
  std::ostringstream OS;
  if (Cand.State != Base.State) {
    OS << CandName << " run ended " << vm::runStateName(Cand.State)
       << " but " << BaseName << " ended " << vm::runStateName(Base.State);
    return OS.str();
  }
  if (Cand.Output != Base.Output) {
    size_t I = 0;
    while (I < Cand.Output.size() && I < Base.Output.size() &&
           Cand.Output[I] == Base.Output[I])
      ++I;
    OS << CandName << " output diverges from " << BaseName << " at value "
       << I << " (" << describeRun(Cand) << " vs " << describeRun(Base)
       << ')';
    return OS.str();
  }
  if (Cand.HeapObjects != Base.HeapObjects ||
      Cand.HeapBytes != Base.HeapBytes) {
    OS << CandName << " heap stats diverge from " << BaseName << " ("
       << describeRun(Cand) << " vs " << describeRun(Base) << ')';
    return OS.str();
  }
  return "";
}

vm::VMConfig plainConfig(uint64_t Seed) {
  vm::VMConfig Config;
  Config.Seed = Seed;
  return Config;
}

//===----------------------------------------------------------------------===//
// output-stability
//===----------------------------------------------------------------------===//

class OutputStabilityOracle : public Oracle {
public:
  const char *id() const override { return "output-stability"; }
  const char *describe() const override {
    return "optimized/unoptimized and profiling-on/off runs print the "
           "same values and allocate the same heap";
  }

  std::string check(const OracleInput &In) const override {
    // Profiling off, no compilation pipeline: the reference semantics.
    RunResult Base = runProgram(In.P, plainConfig(In.Seed));
    if (Base.State != vm::RunState::Finished)
      return "baseline run did not finish: " + describeRun(Base);

    // Profiling on, every registered profiler (the registry is the
    // authority on what exists — a profiler added there is covered here
    // with no oracle change).
    for (const prof::ProfilerDescriptor &P :
         prof::ProfilerRegistry::instance().all()) {
      if (P.Kind == vm::ProfilerKind::None)
        continue; // that IS the baseline
      vm::VMConfig Config = plainConfig(In.Seed);
      P.Configure(Config.Profiler);
      Config.Profiler.CBS.Stride = 2;
      Config.Profiler.CBS.SamplesPerTick = 4;
      if (std::string D = compareRuns("profiling-off", Base, P.Name,
                                      runProgram(In.P, Config));
          !D.empty())
        return D;
    }

    // Optimized (trivial inlining, the accuracy-experiment pipeline).
    vm::VMConfig Opt =
        exp::jitOnlyConfig(In.P, vm::Personality::JikesRVM, In.Seed);
    Opt.Profiler.Kind = vm::ProfilerKind::CBS;
    if (std::string D = compareRuns("unoptimized", Base, "trivially-optimized",
                                    runProgram(In.P, Opt));
        !D.empty())
      return D;

    // Profile-directed inlining driven by the exhaustive profile.
    vm::VMConfig ExConfig = plainConfig(In.Seed);
    prof::ProfilerRegistry::instance().configure("exhaustive",
                                                 ExConfig.Profiler);
    RunResult Exhaustive = runProgram(In.P, ExConfig);
    auto Plan = std::make_shared<opt::InlinePlan>(
        opt::NewJikesOracle().plan(In.P, Exhaustive.Profile));
    vm::VMConfig Pgo = plainConfig(In.Seed);
    Pgo.Profiler.Kind = vm::ProfilerKind::CBS;
    Pgo.CompileHook =
        opt::makeCompileHook(std::move(Plan), Pgo.Costs, opt::CompileOptions());
    if (std::string D = compareRuns("unoptimized", Base, "profile-inlined",
                                    runProgram(In.P, Pgo));
        !D.empty())
      return D;
    return "";
  }
};

//===----------------------------------------------------------------------===//
// cbs-subset
//===----------------------------------------------------------------------===//

class CbsSubsetOracle : public Oracle {
public:
  /// Overlap floor, applied only once the run has taken enough samples
  /// for the overlap statistic to be meaningful. Seed-stable: runs are
  /// deterministic, so a seed that clears the floor always will.
  static constexpr uint64_t MinSamplesForFloor = 50;
  static constexpr double OverlapFloorPct = 30.0;

  const char *id() const override { return "cbs-subset"; }
  const char *describe() const override {
    return "CBS-sampled DCG support is a subset of the exhaustive "
           "profile and overlaps it above the floor";
  }

  std::string check(const OracleInput &In) const override {
    vm::VMConfig ExConfig = plainConfig(In.Seed);
    prof::ProfilerRegistry::instance().configure("exhaustive",
                                                 ExConfig.Profiler);
    RunResult Exhaustive = runProgram(In.P, ExConfig);
    if (Exhaustive.Profile.totalWeight() != Exhaustive.Calls) {
      std::ostringstream OS;
      OS << "exhaustive profile weight " << Exhaustive.Profile.totalWeight()
         << " does not equal the " << Exhaustive.Calls << " executed calls";
      return OS.str();
    }

    vm::VMConfig Config = plainConfig(In.Seed);
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
    Config.Profiler.CBS.Stride = 1;
    Config.Profiler.CBS.SamplesPerTick = 1000;
    // Short programs may take no samples; a tiny timer period opens
    // enough windows.
    Config.TimerPeriodCycles = 500;
    RunResult Sampled = runProgram(In.P, Config);

    std::string Problem;
    Sampled.Profile.forEachEdge([&](prof::CallEdge E, uint64_t W) {
      if (Problem.empty() && Exhaustive.Profile.weight(E) == 0) {
        std::ostringstream OS;
        OS << "sampled edge (site " << E.Site << " -> method " << E.Callee
           << ", weight " << W << ") never executed";
        Problem = OS.str();
      }
    });
    if (!Problem.empty())
      return Problem;

    if (Sampled.Samples >= MinSamplesForFloor) {
      double Overlap = prof::overlap(Sampled.Profile, Exhaustive.Profile);
      if (Overlap < OverlapFloorPct) {
        std::ostringstream OS;
        OS << "overlap " << Overlap << "% below the " << OverlapFloorPct
           << "% floor after " << Sampled.Samples << " samples";
        return OS.str();
      }
    }
    return "";
  }
};

//===----------------------------------------------------------------------===//
// profile-roundtrip
//===----------------------------------------------------------------------===//

class ProfileRoundTripOracle : public Oracle {
public:
  const char *id() const override { return "profile-roundtrip"; }
  const char *describe() const override {
    return "serialize -> parse -> serialize of any sampled profile is "
           "byte-identical and validates against the program";
  }

  std::string check(const OracleInput &In) const override {
    // One exact and one sampled profiler, resolved through the
    // registry.
    for (const char *Name : {"exhaustive", "cbs"}) {
      vm::VMConfig Config = plainConfig(In.Seed);
      prof::ProfilerRegistry::instance().configure(Name, Config.Profiler);
      Config.Profiler.CBS.SamplesPerTick = 64;
      Config.TimerPeriodCycles = 2'000;
      RunResult R = runProgram(In.P, Config);

      if (std::string Problem = prof::validateAgainst(R.Profile, In.P);
          !Problem.empty())
        return std::string(Name) + " profile fails validation: " + Problem;

      std::string First = prof::ProfileCodec::encode(R.Profile);
      prof::ProfileCodec::Decoded Parsed = prof::ProfileCodec::decode(First);
      if (!Parsed.ok())
        return std::string(Name) +
               " profile does not parse back: " + Parsed.Error;
      std::string Second = prof::ProfileCodec::encode(*Parsed.Graph);
      if (First != Second)
        return std::string(Name) +
               " profile round-trip is not byte-identical (" +
               std::to_string(First.size()) + " vs " +
               std::to_string(Second.size()) + " bytes)";

      // The v2 (repository) envelope must round-trip metadata exactly.
      prof::ProfileMeta Meta;
      Meta.ProgramHash = 0x0123456789abcdefull ^ In.Seed;
      Meta.Personality = "jikes";
      Meta.Runs = 3;
      Meta.Cycles = 1'000'000 + In.Seed;
      std::string V2 = prof::ProfileCodec::encode(R.Profile, Meta);
      prof::ProfileCodec::Decoded P2 = prof::ProfileCodec::decode(V2);
      if (!P2.ok())
        return std::string(Name) +
               " v2 profile does not parse back: " + P2.Error;
      if (P2.Version != prof::ProfileCodec::V2 ||
          P2.Meta.ProgramHash != Meta.ProgramHash ||
          P2.Meta.Personality != Meta.Personality ||
          P2.Meta.Runs != Meta.Runs || P2.Meta.Cycles != Meta.Cycles)
        return std::string(Name) + " v2 metadata did not round-trip";
      if (prof::ProfileCodec::encode(*P2.Graph, P2.Meta) != V2)
        return std::string(Name) +
               " v2 profile round-trip is not byte-identical";
    }
    return "";
  }
};

//===----------------------------------------------------------------------===//
// shard-determinism
//===----------------------------------------------------------------------===//

class ShardDeterminismOracle : public Oracle {
public:
  const char *id() const override { return "shard-determinism"; }
  const char *describe() const override {
    return "profiles are bitwise equal across dcg-shards 1/8 and "
           "across ParallelRunner jobs 1/4";
  }

  std::string check(const OracleInput &In) const override {
    auto ProfileWithShards = [&](unsigned Shards) {
      vm::VMConfig Config = plainConfig(In.Seed);
      Config.Profiler.Kind = vm::ProfilerKind::CBS;
      Config.Profiler.CBS.SamplesPerTick = 64;
      Config.Profiler.DCGShards = Shards;
      Config.Profiler.SampleBufferCapacity = 8; // force frequent flushes
      Config.TimerPeriodCycles = 2'000;
      return runProgram(In.P, Config);
    };
    RunResult OneShard = ProfileWithShards(1);
    RunResult EightShards = ProfileWithShards(8);
    if (std::string D =
            compareRuns("dcg-shards=1", OneShard, "dcg-shards=8", EightShards);
        !D.empty())
      return D;
    if (prof::ProfileCodec::encode(OneShard.Profile) !=
        prof::ProfileCodec::encode(EightShards.Profile))
      return "dcg-shards=1 and dcg-shards=8 profiles serialize "
             "differently";

    // The same grid of runs through the parallel engine must commit
    // byte-identical results at any job count.
    auto SweepWithJobs = [&](unsigned Jobs) {
      exp::ParallelConfig Par;
      Par.Jobs = Jobs;
      Par.SeedBase = In.Seed;
      exp::ParallelRunner Runner(Par);
      std::vector<std::string> Serialized(3);
      std::string Committed;
      Runner.run(
          Serialized.size(),
          [&](exp::ParallelRunner::TaskContext &Ctx) {
            vm::VMConfig Config = plainConfig(In.Seed + Ctx.Index);
            Config.Profiler.Kind = vm::ProfilerKind::CBS;
            Config.Profiler.CBS.SamplesPerTick = 64;
            Config.TimerPeriodCycles = 2'000;
            Serialized[Ctx.Index] =
                prof::ProfileCodec::encode(runProgram(In.P, Config).Profile);
          },
          [&](exp::ParallelRunner::TaskContext &Ctx) {
            Committed += Serialized[Ctx.Index];
          });
      return Committed;
    };
    std::string Serial = SweepWithJobs(1);
    std::string Parallel = SweepWithJobs(4);
    if (Serial != Parallel)
      return "ParallelRunner jobs=1 and jobs=4 commit different profile "
             "bytes";
    return "";
  }
};

//===----------------------------------------------------------------------===//
// async-compile-stability
//===----------------------------------------------------------------------===//

/// runProgram with the adaptive optimization system attached: the
/// generated program runs under CBS sampling while hot methods
/// recompile through the background compile queue.
RunResult runProgramWithAOS(const bc::Program &P, vm::VMConfig Config,
                            aos::AOSConfig AC) {
  Config.MaxCycles = std::min(Config.MaxCycles, OracleMaxCycles);
  opt::NewJikesOracle InlineOracle;
  aos::AdaptiveSystem AOS(&InlineOracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  RunResult R;
  R.State = VM.run();
  R.Trap = VM.trapMessage();
  R.Output = VM.output();
  R.HeapObjects = VM.heap().numObjects();
  R.HeapBytes = VM.heap().bytesAllocated();
  R.Profile = VM.profile();
  R.Samples = VM.stats().SamplesTaken;
  R.Calls = VM.stats().CallsExecuted;
  return R;
}

class AsyncCompileStabilityOracle : public Oracle {
public:
  const char *id() const override { return "async-compile-stability"; }
  const char *describe() const override {
    return "the background compile pipeline preserves program "
           "semantics at any modelled latency and is byte-identical "
           "at any --compile-jobs count";
  }

  std::string check(const OracleInput &In) const override {
    RunResult Base = runProgram(In.P, plainConfig(In.Seed));
    // A baseline that traps or runs out of budget is output-stability's
    // finding, not a pipeline divergence.
    if (Base.State != vm::RunState::Finished)
      return "";

    auto CbsConfig = [&](double LatencyScale) {
      vm::VMConfig Config = plainConfig(In.Seed);
      Config.Profiler.Kind = vm::ProfilerKind::CBS;
      Config.Profiler.CBS.Stride = 2;
      Config.Profiler.CBS.SamplesPerTick = 4;
      // Generated programs are small: tick fast enough that promotions
      // (and thus installs) actually happen.
      Config.TimerPeriodCycles = 2'000;
      Config.Costs.CompileLatencyScale = LatencyScale;
      return Config;
    };
    auto WithJobs = [](uint32_t Jobs) {
      aos::AOSConfig AC;
      AC.CompileJobs = Jobs;
      return AC;
    };

    // Semantics: recompiling through the queue — immediately or after a
    // long modelled latency — must not perturb output or the heap.
    if (std::string D =
            compareRuns("no-aos", Base, "aos-latency-0",
                        runProgramWithAOS(In.P, CbsConfig(0), WithJobs(0)));
        !D.empty())
      return D;
    if (std::string D =
            compareRuns("no-aos", Base, "aos-latency-8",
                        runProgramWithAOS(In.P, CbsConfig(8), WithJobs(0)));
        !D.empty())
      return D;

    // Determinism: worker threads only pre-compute pure compile
    // results, so jobs=2 must be byte-identical to jobs=0 down to the
    // serialized profile.
    RunResult Jobs0 = runProgramWithAOS(In.P, CbsConfig(1), WithJobs(0));
    RunResult Jobs2 = runProgramWithAOS(In.P, CbsConfig(1), WithJobs(2));
    if (std::string D = compareRuns("compile-jobs=0", Jobs0, "compile-jobs=2",
                                    Jobs2);
        !D.empty())
      return D;
    if (Jobs0.Samples != Jobs2.Samples)
      return "compile-jobs=0 and compile-jobs=2 took different sample "
             "counts";
    if (prof::ProfileCodec::encode(Jobs0.Profile) != prof::ProfileCodec::encode(Jobs2.Profile))
      return "compile-jobs=0 and compile-jobs=2 profiles serialize "
             "differently";
    return "";
  }
};

//===----------------------------------------------------------------------===//
// deopt-storm-stability
//===----------------------------------------------------------------------===//

class DeoptStormStabilityOracle : public Oracle {
public:
  const char *id() const override { return "deopt-storm-stability"; }
  const char *describe() const override {
    return "a forced invalidation storm (every AOS install deoptimized "
           "at every taken yieldpoint) leaves output and heap "
           "byte-identical to the no-AOS baseline at any "
           "--compile-jobs";
  }

  std::string check(const OracleInput &In) const override {
    RunResult Base = runProgram(In.P, plainConfig(In.Seed));
    // A baseline that traps or runs out of budget is output-stability's
    // finding, not a deopt divergence.
    if (Base.State != vm::RunState::Finished)
      return "";

    // The worst case the controller can inflict: every version the AOS
    // ever installs is invalidated at the very next taken yieldpoint,
    // forever. Guarded inlining is semantically transparent, so even
    // this must be invisible to the program — only slower.
    auto CbsConfig = [&]() {
      vm::VMConfig Config = plainConfig(In.Seed);
      Config.Profiler.Kind = vm::ProfilerKind::CBS;
      Config.Profiler.CBS.Stride = 2;
      Config.Profiler.CBS.SamplesPerTick = 4;
      Config.TimerPeriodCycles = 2'000;
      Config.Costs.CompileLatencyScale = 1;
      return Config;
    };
    auto StormAOS = [](uint32_t Jobs) {
      aos::AOSConfig AC;
      AC.CompileJobs = Jobs;
      AC.Deopt.Enabled = true;
      AC.Deopt.ForceStormForTesting = true;
      // A low cap so the storm also exercises conservative pinning.
      AC.Deopt.MaxDeoptsPerMethod = 2;
      return AC;
    };

    RunResult Storm0 = runProgramWithAOS(In.P, CbsConfig(), StormAOS(0));
    if (std::string D = compareRuns("no-aos", Base, "deopt-storm", Storm0);
        !D.empty())
      return D;

    // Invalidation decisions are made on the VM thread in virtual time,
    // so the storm must stay byte-identical at any worker count.
    RunResult Storm2 = runProgramWithAOS(In.P, CbsConfig(), StormAOS(2));
    if (std::string D = compareRuns("storm-jobs=0", Storm0, "storm-jobs=2",
                                    Storm2);
        !D.empty())
      return D;
    if (Storm0.Samples != Storm2.Samples)
      return "storm with compile-jobs=0 and compile-jobs=2 took "
             "different sample counts";
    if (prof::ProfileCodec::encode(Storm0.Profile) !=
        prof::ProfileCodec::encode(Storm2.Profile))
      return "storm with compile-jobs=0 and compile-jobs=2 profiles "
             "serialize differently";
    return "";
  }
};

//===----------------------------------------------------------------------===//
// osr-stability
//===----------------------------------------------------------------------===//

class OsrStabilityOracle : public Oracle {
public:
  const char *id() const override { return "osr-stability"; }
  const char *describe() const override {
    return "on-stack replacement (promotion and deopt-exit transfers at "
           "loop-header yieldpoints) preserves output and heap and is "
           "byte-identical at any --compile-jobs";
  }

  std::string check(const OracleInput &In) const override {
    RunResult Base = runProgram(In.P, plainConfig(In.Seed));
    // A baseline that traps or runs out of budget is output-stability's
    // finding, not an OSR divergence.
    if (Base.State != vm::RunState::Finished)
      return "";

    auto OsrConfig = [&](double LatencyScale) {
      vm::VMConfig Config = plainConfig(In.Seed);
      Config.Profiler.Kind = vm::ProfilerKind::CBS;
      Config.Profiler.CBS.Stride = 2;
      Config.Profiler.CBS.SamplesPerTick = 4;
      Config.TimerPeriodCycles = 2'000;
      Config.Costs.CompileLatencyScale = LatencyScale;
      Config.EnableOSR = true;
      return Config;
    };
    auto WithJobs = [](uint32_t Jobs) {
      aos::AOSConfig AC;
      AC.CompileJobs = Jobs;
      return AC;
    };

    // Semantics: a frame transferring mid-loop between versions must not
    // perturb output or the heap, whether the install lands immediately
    // (latency 0: promotion OSR fires at the very next backedge) or
    // after a long modelled latency.
    if (std::string D =
            compareRuns("no-aos", Base, "osr-latency-0",
                        runProgramWithAOS(In.P, OsrConfig(0), WithJobs(0)));
        !D.empty())
      return D;
    if (std::string D =
            compareRuns("no-aos", Base, "osr-latency-8",
                        runProgramWithAOS(In.P, OsrConfig(8), WithJobs(0)));
        !D.empty())
      return D;

    // Determinism: OSR transfers happen on the VM thread at taken
    // backedge yieldpoints in virtual time, so any worker count must be
    // byte-identical down to the serialized profile.
    RunResult Jobs0 = runProgramWithAOS(In.P, OsrConfig(1), WithJobs(0));
    RunResult Jobs2 = runProgramWithAOS(In.P, OsrConfig(1), WithJobs(2));
    if (std::string D =
            compareRuns("osr-jobs=0", Jobs0, "osr-jobs=2", Jobs2);
        !D.empty())
      return D;
    if (Jobs0.Samples != Jobs2.Samples)
      return "osr with compile-jobs=0 and compile-jobs=2 took different "
             "sample counts";
    if (prof::ProfileCodec::encode(Jobs0.Profile) != prof::ProfileCodec::encode(Jobs2.Profile))
      return "osr with compile-jobs=0 and compile-jobs=2 profiles "
             "serialize differently";

    // Deopt-exit path: under the forced invalidation storm every frame
    // on retired code reconciles to Deopted, and with OSR on it must
    // transfer off that code at its next loop header — still invisibly.
    auto StormAOS = [](uint32_t Jobs) {
      aos::AOSConfig AC;
      AC.CompileJobs = Jobs;
      AC.Deopt.Enabled = true;
      AC.Deopt.ForceStormForTesting = true;
      AC.Deopt.MaxDeoptsPerMethod = 2;
      return AC;
    };
    RunResult Storm = runProgramWithAOS(In.P, OsrConfig(1), StormAOS(0));
    if (std::string D = compareRuns("no-aos", Base, "osr-deopt-storm", Storm);
        !D.empty())
      return D;
    RunResult Storm2 = runProgramWithAOS(In.P, OsrConfig(1), StormAOS(2));
    if (std::string D = compareRuns("osr-storm-jobs=0", Storm,
                                    "osr-storm-jobs=2", Storm2);
        !D.empty())
      return D;
    if (prof::ProfileCodec::encode(Storm.Profile) !=
        prof::ProfileCodec::encode(Storm2.Profile))
      return "osr storm with compile-jobs=0 and compile-jobs=2 profiles "
             "serialize differently";
    return "";
  }
};

//===----------------------------------------------------------------------===//
// warm-start-stability
//===----------------------------------------------------------------------===//

class WarmStartStabilityOracle : public Oracle {
public:
  const char *id() const override { return "warm-start-stability"; }
  const char *describe() const override {
    return "warm-starting the AOS from a prior run's profile preserves "
           "output and heap and is byte-identical at any "
           "--compile-jobs";
  }

  std::string check(const OracleInput &In) const override {
    RunResult Base = runProgram(In.P, plainConfig(In.Seed));
    // A baseline that traps or runs out of budget is output-stability's
    // finding, not a warm-start divergence.
    if (Base.State != vm::RunState::Finished)
      return "";

    auto CbsConfig = [&]() {
      vm::VMConfig Config = plainConfig(In.Seed);
      Config.Profiler.Kind = vm::ProfilerKind::CBS;
      Config.Profiler.CBS.Stride = 2;
      Config.Profiler.CBS.SamplesPerTick = 4;
      Config.TimerPeriodCycles = 2'000;
      Config.Costs.CompileLatencyScale = 1;
      return Config;
    };

    // The cold run collects the profile a repository would persist.
    RunResult Cold = runProgramWithAOS(In.P, CbsConfig(), aos::AOSConfig());
    auto Persisted = std::make_shared<const prof::DCGSnapshot>(Cold.Profile);

    // The warm run pre-enqueues hot methods from it at cycle 0. Advice
    // only changes *when* code installs, never what the program does.
    auto WarmAOS = [&](uint32_t Jobs) {
      aos::AOSConfig AC;
      AC.CompileJobs = Jobs;
      AC.WarmStart.Profile = Persisted;
      return AC;
    };
    RunResult Warm0 = runProgramWithAOS(In.P, CbsConfig(), WarmAOS(0));
    if (std::string D = compareRuns("no-aos", Base, "warm-start", Warm0);
        !D.empty())
      return D;

    // Warm pre-enqueues happen at cycle 0 on the VM thread, so any
    // worker count must be byte-identical down to the serialized
    // profile.
    RunResult Warm2 = runProgramWithAOS(In.P, CbsConfig(), WarmAOS(2));
    if (std::string D =
            compareRuns("warm-jobs=0", Warm0, "warm-jobs=2", Warm2);
        !D.empty())
      return D;
    if (Warm0.Samples != Warm2.Samples)
      return "warm start with compile-jobs=0 and compile-jobs=2 took "
             "different sample counts";
    if (prof::ProfileCodec::encode(Warm0.Profile) !=
        prof::ProfileCodec::encode(Warm2.Profile))
      return "warm start with compile-jobs=0 and compile-jobs=2 "
             "profiles serialize differently";
    return "";
  }
};

//===----------------------------------------------------------------------===//
// The deliberately broken test oracle
//===----------------------------------------------------------------------===//

class BrokenOracleForTesting : public Oracle {
public:
  const char *id() const override { return "broken"; }
  const char *describe() const override {
    return "TEST ONLY: flags any program that prints (exercises the "
           "reducer and replay path)";
  }

  std::string check(const OracleInput &In) const override {
    RunResult R = runProgram(In.P, plainConfig(In.Seed));
    if (!R.Output.empty())
      return "program printed " + std::to_string(R.Output.size()) +
             " values (the broken oracle rejects all output)";
    return "";
  }
};

} // namespace

OracleRegistry OracleRegistry::builtin() {
  OracleRegistry R;
  R.add(std::make_unique<OutputStabilityOracle>());
  R.add(std::make_unique<CbsSubsetOracle>());
  R.add(std::make_unique<ProfileRoundTripOracle>());
  R.add(std::make_unique<ShardDeterminismOracle>());
  R.add(std::make_unique<AsyncCompileStabilityOracle>());
  R.add(std::make_unique<DeoptStormStabilityOracle>());
  R.add(std::make_unique<OsrStabilityOracle>());
  R.add(std::make_unique<WarmStartStabilityOracle>());
  return R;
}

void fuzz::addBrokenOracleForTesting(OracleRegistry &R) {
  R.add(std::make_unique<BrokenOracleForTesting>());
}
