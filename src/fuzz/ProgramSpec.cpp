//===- fuzz/ProgramSpec.cpp - Reducible program description ----------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramSpec.h"

#include "bytecode/Builder.h"
#include "support/Json.h"

#include <sstream>

using namespace cbs;
using namespace cbs::fuzz;

size_t ProgramSpec::atomCount() const {
  size_t N = Impls.size() + Methods.size() + MainCalls.size() + Workers.size();
  for (const MethodSpec &M : Methods)
    N += M.Steps.size();
  return N;
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

std::string fuzz::validateSpec(const ProgramSpec &Spec) {
  std::ostringstream Err;
  if (Spec.Impls.empty())
    return "spec has no virtual implementations";
  auto checkArgs = [&](const char *What, size_t Index, uint32_t Callee,
                       size_t NumArgs) -> bool {
    if (Callee >= Spec.Methods.size()) {
      Err << What << ' ' << Index << " targets unknown method " << Callee;
      return false;
    }
    if (NumArgs != Spec.Methods[Callee].NumArgs) {
      Err << What << ' ' << Index << " carries " << NumArgs
          << " args for a method taking " << Spec.Methods[Callee].NumArgs;
      return false;
    }
    return true;
  };
  for (size_t M = 0; M != Spec.Methods.size(); ++M) {
    const MethodSpec &MS = Spec.Methods[M];
    for (size_t S = 0; S != MS.Steps.size(); ++S) {
      const StepSpec &Step = MS.Steps[S];
      switch (Step.Kind) {
      case StepKind::CallStatic:
        if (Step.Callee >= M) {
          Err << "method " << M << " step " << S
              << " calls non-lower method " << Step.Callee;
          return Err.str();
        }
        if (Step.Values.size() != Spec.Methods[Step.Callee].NumArgs) {
          Err << "method " << M << " step " << S
              << " carries a mis-sized argument list";
          return Err.str();
        }
        break;
      case StepKind::CallVirtual:
        if (Step.ImplIndex >= Spec.Impls.size()) {
          Err << "method " << M << " step " << S
              << " dispatches to unknown impl " << Step.ImplIndex;
          return Err.str();
        }
        if (Step.Values.empty()) {
          Err << "method " << M << " step " << S
              << " has no virtual-call argument";
          return Err.str();
        }
        break;
      case StepKind::Loop:
        if (Step.A < 1) {
          Err << "method " << M << " step " << S
              << " loop must iterate at least once";
          return Err.str();
        }
        break;
      case StepKind::Div:
        if (Step.A < 1) {
          Err << "method " << M << " step " << S
              << " divides by a non-positive constant";
          return Err.str();
        }
        [[fallthrough]];
      case StepKind::Push:
      case StepKind::BinOp:
      case StepKind::Accumulate:
      case StepKind::Diamond:
        if (Step.Values.empty()) {
          Err << "method " << M << " step " << S
              << " has no fallback operand";
          return Err.str();
        }
        break;
      case StepKind::FieldTrip:
        if (Step.B < 0 || Step.B > 1) {
          Err << "method " << M << " step " << S
              << " touches a field outside the base class";
          return Err.str();
        }
        break;
      }
      for (const ValueSrc &V : Step.Values)
        if (V.FromArg && V.Slot >= MS.NumArgs) {
          Err << "method " << M << " step " << S
              << " reads argument slot " << V.Slot << " of " << MS.NumArgs;
          return Err.str();
        }
    }
  }
  for (size_t C = 0; C != Spec.MainCalls.size(); ++C) {
    const CallSpec &Call = Spec.MainCalls[C];
    if (!checkArgs("main call", C, Call.Callee, Call.Args.size()))
      return Err.str();
    if (Call.Repeat < 1)
      return "main call repeat must be at least 1";
  }
  for (size_t W = 0; W != Spec.Workers.size(); ++W) {
    const WorkerSpec &Worker = Spec.Workers[W];
    if (!checkArgs("worker", W, Worker.Callee, Worker.Args.size()))
      return Err.str();
    if (Worker.Repeat < 1)
      return "worker repeat must be at least 1";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// Build
//===----------------------------------------------------------------------===//

namespace {

/// Builds one static method body from its step list, tracking operand
/// stack depth exactly as the comments in ProgramSpec.h describe.
class BodyBuilder {
public:
  BodyBuilder(bc::MethodBuilder &MB, const MethodSpec &MS,
              const std::vector<bc::MethodId> &Methods,
              const std::vector<uint32_t> &ArgCounts,
              const std::vector<bc::ClassId> &Classes, bc::ClassId Base,
              bc::SelectorId Sel)
      : MB(MB), MS(MS), Methods(Methods), ArgCounts(ArgCounts),
        Classes(Classes), Base(Base), Sel(Sel) {}

  void run() {
    // Locals: [0, NumArgs) arguments, NumArgs the scratch accumulator,
    // beyond that loop counters and object temps.
    Scratch = MS.NumArgs;
    NextLocal = MS.NumArgs + 1;
    MB.iconst(0).istore(Scratch);
    for (const StepSpec &Step : MS.Steps)
      build(Step);
    // Fold everything on the stack into one return value.
    if (Depth == 0) {
      MB.iload(Scratch);
      ++Depth;
    }
    while (Depth > 1) {
      MB.ixor();
      --Depth;
    }
    MB.iload(Scratch).iadd().iret();
  }

private:
  void push(const ValueSrc &V) {
    if (V.FromArg)
      MB.iload(V.Slot);
    else
      MB.iconst(V.Const);
    ++Depth;
  }

  void build(const StepSpec &Step) {
    switch (Step.Kind) {
    case StepKind::Push:
      push(Step.Values[0]);
      break;
    case StepKind::BinOp:
      if (Depth < 2) {
        push(Step.Values[0]);
        break;
      }
      switch (Step.A % 5) {
      case 0:
        MB.iadd();
        break;
      case 1:
        MB.isub();
        break;
      case 2:
        MB.imul();
        break;
      case 3:
        MB.iand();
        break;
      default:
        MB.ixor();
        break;
      }
      --Depth;
      break;
    case StepKind::Div:
      if (Depth < 1) {
        push(Step.Values[0]);
        break;
      }
      MB.iconst(Step.A).idiv();
      break;
    case StepKind::Accumulate:
      if (Depth < 1) {
        push(Step.Values[0]);
        break;
      }
      MB.iload(Scratch).iadd().istore(Scratch);
      --Depth;
      break;
    case StepKind::CallStatic: {
      for (const ValueSrc &V : Step.Values)
        push(V);
      MB.invokeStatic(Methods[Step.Callee]);
      Depth -= ArgCounts[Step.Callee];
      ++Depth;
      break;
    }
    case StepKind::CallVirtual:
      MB.newObject(Classes[Step.ImplIndex]);
      push(Step.Values[0]);
      MB.invokeVirtual(Sel);
      // Receiver + arg consumed, result pushed: net +1, already
      // accounted by push().
      break;
    case StepKind::Loop: {
      uint32_t Counter = NextLocal++;
      MB.iconst(Step.A).istore(Counter);
      bc::Label Head = MB.newLabel(), Exit = MB.newLabel();
      MB.bind(Head).iload(Counter).ifLe(Exit);
      MB.iload(Scratch).iconst(3).iadd().istore(Scratch);
      if (Step.B > 0)
        MB.work(Step.B);
      MB.iinc(Counter, -1).jump(Head);
      MB.bind(Exit);
      break;
    }
    case StepKind::Diamond: {
      if (Depth < 1) {
        push(Step.Values[0]);
        break;
      }
      bc::Label Else = MB.newLabel(), Join = MB.newLabel();
      MB.ifEq(Else);
      --Depth;
      MB.iconst(Step.A).jump(Join);
      MB.bind(Else).iconst(Step.B);
      MB.bind(Join);
      ++Depth;
      break;
    }
    case StepKind::FieldTrip: {
      uint32_t Temp = NextLocal++;
      MB.newObject(Base).astore(Temp);
      MB.aload(Temp);
      MB.iconst(Step.A);
      MB.putField(static_cast<uint32_t>(Step.B));
      break;
    }
    }
  }

  bc::MethodBuilder &MB;
  const MethodSpec &MS;
  const std::vector<bc::MethodId> &Methods;
  const std::vector<uint32_t> &ArgCounts;
  const std::vector<bc::ClassId> &Classes;
  bc::ClassId Base;
  bc::SelectorId Sel;
  uint32_t Depth = 0;
  uint32_t Scratch = 0;
  uint32_t NextLocal = 0;
};

/// Emits `Repeat x { push Args; call Callee; <Consume result> }`,
/// where Consume is print() for main calls and a store into \p
/// DiscardSlot for workers.
void emitRepeatedCall(bc::MethodBuilder &MB, bc::MethodId Callee,
                      const std::vector<int32_t> &Args, uint32_t Repeat,
                      bool Print, uint32_t CounterSlot) {
  auto CallOnce = [&] {
    for (int32_t A : Args)
      MB.iconst(A);
    MB.invokeStatic(Callee);
    if (Print)
      MB.print();
    else
      MB.istore(CounterSlot + 1); // discard into a scratch slot
  };
  if (Repeat == 1) {
    CallOnce();
    return;
  }
  MB.iconst(static_cast<int32_t>(Repeat)).istore(CounterSlot);
  bc::Label Head = MB.newLabel(), Exit = MB.newLabel();
  MB.bind(Head).iload(CounterSlot).ifLe(Exit);
  CallOnce();
  MB.iinc(CounterSlot, -1).jump(Head);
  MB.bind(Exit);
}

} // namespace

bc::Program fuzz::buildProgram(const ProgramSpec &Spec) {
  using namespace bc;
  ProgramBuilder PB;

  // Class family with one selector, one implementation per ImplSpec.
  ClassId Base = PB.addClass("RBase", InvalidClassId, 2);
  SelectorId Sel = PB.addSelector("rsel", 2);
  std::vector<ClassId> Classes;
  for (size_t I = 0; I != Spec.Impls.size(); ++I) {
    const ImplSpec &Impl = Spec.Impls[I];
    ClassId C = PB.addClass("RC" + std::to_string(I), Base, 1);
    Classes.push_back(C);
    MethodId Id = PB.declareVirtual(C, Sel, "impl", {}, /*HasResult=*/true);
    MethodBuilder MB = PB.defineMethod(Id);
    MB.iload(1).iconst(Impl.Operand);
    switch (Impl.Op) {
    case ImplOp::Add:
      MB.iadd();
      break;
    case ImplOp::Mul:
      MB.imul();
      break;
    case ImplOp::Xor:
      MB.ixor();
      break;
    }
    if (Impl.WorkCycles > 0)
      MB.work(Impl.WorkCycles);
    MB.iret();
    MB.finish();
  }

  // Static method DAG: declare all first so ids are dense and stable.
  std::vector<MethodId> Methods;
  std::vector<uint32_t> ArgCounts;
  for (size_t M = 0; M != Spec.Methods.size(); ++M) {
    ArgCounts.push_back(Spec.Methods[M].NumArgs);
    Methods.push_back(PB.declareStatic(
        "rm" + std::to_string(M),
        std::vector<ValKind>(Spec.Methods[M].NumArgs, ValKind::Int),
        /*HasResult=*/true));
  }
  for (size_t M = 0; M != Spec.Methods.size(); ++M) {
    MethodBuilder MB = PB.defineMethod(Methods[M]);
    BodyBuilder(MB, Spec.Methods[M], Methods, ArgCounts, Classes, Base, Sel)
        .run();
    MB.finish();
  }

  // Worker wrappers (spawn targets must be static, argumentless, void).
  std::vector<MethodId> WorkerIds;
  for (size_t W = 0; W != Spec.Workers.size(); ++W)
    WorkerIds.push_back(PB.declareStatic("worker" + std::to_string(W)));
  for (size_t W = 0; W != Spec.Workers.size(); ++W) {
    const WorkerSpec &Worker = Spec.Workers[W];
    MethodBuilder MB = PB.defineMethod(WorkerIds[W]);
    emitRepeatedCall(MB, Methods[Worker.Callee], Worker.Args, Worker.Repeat,
                     /*Print=*/false, /*CounterSlot=*/0);
    MB.finish();
  }

  // main: spawn workers, then perform (and print) the main calls.
  MethodId Main = PB.declareStatic("main");
  {
    MethodBuilder MB = PB.defineMethod(Main);
    for (MethodId W : WorkerIds)
      MB.spawn(W);
    uint32_t CounterSlot = 0;
    for (const CallSpec &Call : Spec.MainCalls) {
      emitRepeatedCall(MB, Methods[Call.Callee], Call.Args, Call.Repeat,
                       /*Print=*/true, CounterSlot);
      CounterSlot += 2; // fresh counter + discard pair per call
    }
    MB.finish();
  }
  return PB.finish(Main);
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

namespace {

const char *implOpName(ImplOp Op) {
  switch (Op) {
  case ImplOp::Add:
    return "add";
  case ImplOp::Mul:
    return "mul";
  case ImplOp::Xor:
    return "xor";
  }
  return "add";
}

const char *stepKindName(StepKind K) {
  switch (K) {
  case StepKind::Push:
    return "push";
  case StepKind::BinOp:
    return "binop";
  case StepKind::Div:
    return "div";
  case StepKind::Accumulate:
    return "accum";
  case StepKind::CallStatic:
    return "call";
  case StepKind::CallVirtual:
    return "vcall";
  case StepKind::Loop:
    return "loop";
  case StepKind::Diamond:
    return "diamond";
  case StepKind::FieldTrip:
    return "field";
  }
  return "push";
}

void writeValues(const std::vector<ValueSrc> &Values, json::JsonWriter &W) {
  W.beginArray();
  for (const ValueSrc &V : Values) {
    W.beginObject();
    if (V.FromArg) {
      W.key("arg");
      W.value(V.Slot);
    } else {
      W.key("const");
      W.value(static_cast<int64_t>(V.Const));
    }
    W.endObject();
  }
  W.endArray();
}

void writeIntArray(const std::vector<int32_t> &Values, json::JsonWriter &W) {
  W.beginArray();
  for (int32_t V : Values)
    W.value(static_cast<int64_t>(V));
  W.endArray();
}

} // namespace

void fuzz::writeSpec(const ProgramSpec &Spec, json::JsonWriter &W) {
  W.beginObject();
  W.key("impls");
  W.beginArray();
  for (const ImplSpec &Impl : Spec.Impls) {
    W.beginObject();
    W.key("op");
    W.value(implOpName(Impl.Op));
    W.key("operand");
    W.value(static_cast<int64_t>(Impl.Operand));
    W.key("work");
    W.value(static_cast<int64_t>(Impl.WorkCycles));
    W.endObject();
  }
  W.endArray();

  W.key("methods");
  W.beginArray();
  for (const MethodSpec &M : Spec.Methods) {
    W.beginObject();
    W.key("args");
    W.value(M.NumArgs);
    W.key("steps");
    W.beginArray();
    for (const StepSpec &S : M.Steps) {
      W.beginObject();
      W.key("kind");
      W.value(stepKindName(S.Kind));
      if (S.A != 0) {
        W.key("a");
        W.value(static_cast<int64_t>(S.A));
      }
      if (S.B != 0) {
        W.key("b");
        W.value(static_cast<int64_t>(S.B));
      }
      if (S.Kind == StepKind::CallStatic) {
        W.key("callee");
        W.value(S.Callee);
      }
      if (S.Kind == StepKind::CallVirtual) {
        W.key("impl");
        W.value(S.ImplIndex);
      }
      if (!S.Values.empty()) {
        W.key("values");
        writeValues(S.Values, W);
      }
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();

  auto WriteCalls = [&](const char *Key, auto const &Calls) {
    W.key(Key);
    W.beginArray();
    for (const auto &Call : Calls) {
      W.beginObject();
      W.key("callee");
      W.value(Call.Callee);
      W.key("args");
      writeIntArray(Call.Args, W);
      W.key("repeat");
      W.value(Call.Repeat);
      W.endObject();
    }
    W.endArray();
  };
  WriteCalls("mainCalls", Spec.MainCalls);
  WriteCalls("workers", Spec.Workers);
  W.endObject();
}

namespace {

/// Member's numeric value as int64, or Default when absent.
int64_t intOr(const json::JsonValue &Obj, const char *Name, int64_t Default) {
  const json::JsonValue *V = Obj.find(Name);
  return V && V->isNumber() ? static_cast<int64_t>(V->NumVal) : Default;
}

bool parseValues(const json::JsonValue &Arr, std::vector<ValueSrc> &Out,
                 std::string &Error) {
  if (!Arr.isArray()) {
    Error = "values is not an array";
    return false;
  }
  for (const json::JsonValue &V : Arr.Elements) {
    if (!V.isObject()) {
      Error = "value entry is not an object";
      return false;
    }
    ValueSrc Src;
    if (const json::JsonValue *Arg = V.find("arg")) {
      Src.FromArg = true;
      Src.Slot = static_cast<uint32_t>(Arg->NumVal);
    } else if (const json::JsonValue *C = V.find("const")) {
      Src.Const = static_cast<int32_t>(C->NumVal);
    } else {
      Error = "value entry has neither 'arg' nor 'const'";
      return false;
    }
    Out.push_back(Src);
  }
  return true;
}

bool parseIntArray(const json::JsonValue &Arr, std::vector<int32_t> &Out,
                   std::string &Error) {
  if (!Arr.isArray()) {
    Error = "args is not an array";
    return false;
  }
  for (const json::JsonValue &V : Arr.Elements) {
    if (!V.isNumber()) {
      Error = "argument is not a number";
      return false;
    }
    Out.push_back(static_cast<int32_t>(V.NumVal));
  }
  return true;
}

} // namespace

ProgramSpec fuzz::parseSpec(const json::JsonValue &V, std::string &Error) {
  ProgramSpec Spec;
  Error.clear();
  if (!V.isObject()) {
    Error = "spec is not an object";
    return {};
  }

  const json::JsonValue *Impls = V.find("impls");
  if (!Impls || !Impls->isArray()) {
    Error = "spec has no impls array";
    return {};
  }
  for (const json::JsonValue &I : Impls->Elements) {
    ImplSpec Impl;
    const json::JsonValue *Op = I.find("op");
    std::string Name = Op && Op->isString() ? Op->Str : "add";
    Impl.Op = Name == "mul"   ? ImplOp::Mul
              : Name == "xor" ? ImplOp::Xor
                              : ImplOp::Add;
    Impl.Operand = static_cast<int32_t>(intOr(I, "operand", 1));
    Impl.WorkCycles = static_cast<int32_t>(intOr(I, "work", 0));
    Spec.Impls.push_back(Impl);
  }

  const json::JsonValue *Methods = V.find("methods");
  if (!Methods || !Methods->isArray()) {
    Error = "spec has no methods array";
    return {};
  }
  for (const json::JsonValue &M : Methods->Elements) {
    MethodSpec MS;
    MS.NumArgs = static_cast<uint32_t>(intOr(M, "args", 0));
    const json::JsonValue *Steps = M.find("steps");
    if (!Steps || !Steps->isArray()) {
      Error = "method has no steps array";
      return {};
    }
    for (const json::JsonValue &S : Steps->Elements) {
      StepSpec Step;
      const json::JsonValue *Kind = S.find("kind");
      std::string Name = Kind && Kind->isString() ? Kind->Str : "";
      if (Name == "push")
        Step.Kind = StepKind::Push;
      else if (Name == "binop")
        Step.Kind = StepKind::BinOp;
      else if (Name == "div")
        Step.Kind = StepKind::Div;
      else if (Name == "accum")
        Step.Kind = StepKind::Accumulate;
      else if (Name == "call")
        Step.Kind = StepKind::CallStatic;
      else if (Name == "vcall")
        Step.Kind = StepKind::CallVirtual;
      else if (Name == "loop")
        Step.Kind = StepKind::Loop;
      else if (Name == "diamond")
        Step.Kind = StepKind::Diamond;
      else if (Name == "field")
        Step.Kind = StepKind::FieldTrip;
      else {
        Error = "unknown step kind '" + Name + "'";
        return {};
      }
      Step.A = static_cast<int32_t>(intOr(S, "a", 0));
      Step.B = static_cast<int32_t>(intOr(S, "b", 0));
      Step.Callee = static_cast<uint32_t>(intOr(S, "callee", 0));
      Step.ImplIndex = static_cast<uint32_t>(intOr(S, "impl", 0));
      if (const json::JsonValue *Values = S.find("values"))
        if (!parseValues(*Values, Step.Values, Error))
          return {};
      MS.Steps.push_back(std::move(Step));
    }
    Spec.Methods.push_back(std::move(MS));
  }

  auto ParseCalls = [&](const char *Key, auto &Out) -> bool {
    const json::JsonValue *Calls = V.find(Key);
    if (!Calls)
      return true; // optional
    if (!Calls->isArray()) {
      Error = std::string(Key) + " is not an array";
      return false;
    }
    for (const json::JsonValue &C : Calls->Elements) {
      typename std::remove_reference_t<decltype(Out)>::value_type Call;
      Call.Callee = static_cast<uint32_t>(intOr(C, "callee", 0));
      Call.Repeat = static_cast<uint32_t>(intOr(C, "repeat", 1));
      if (const json::JsonValue *Args = C.find("args"))
        if (!parseIntArray(*Args, Call.Args, Error))
          return false;
      Out.push_back(std::move(Call));
    }
    return true;
  };
  if (!ParseCalls("mainCalls", Spec.MainCalls))
    return {};
  if (!ParseCalls("workers", Spec.Workers))
    return {};

  if (std::string Problem = validateSpec(Spec); !Problem.empty()) {
    Error = "invalid spec: " + Problem;
    return {};
  }
  return Spec;
}
