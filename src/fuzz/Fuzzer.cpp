//===- fuzz/Fuzzer.cpp - Differential fuzzing campaign driver --------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "bytecode/Verifier.h"
#include "experiments/ParallelRunner.h"
#include "telemetry/MetricRegistry.h"

#include <fstream>
#include <ostream>

using namespace cbs;
using namespace cbs::fuzz;

namespace {

/// Everything one task produces; written into its grid slot on the
/// worker, consumed at commit time on the calling thread.
struct TaskResult {
  unsigned OracleChecks = 0;
  unsigned ReduceChecks = 0;
  unsigned ReduceAccepted = 0;
  std::vector<Violation> Violations;
};

std::vector<const Oracle *> selectOracles(const OracleRegistry &Registry,
                                          const std::string &Filter) {
  std::vector<const Oracle *> Selected;
  for (const std::unique_ptr<Oracle> &O : Registry.all())
    if (Filter.empty() || Filter == O->id())
      Selected.push_back(O.get());
  return Selected;
}

} // namespace

FuzzReport fuzz::runFuzz(const FuzzOptions &Options,
                         const OracleRegistry &Registry,
                         tel::MetricRegistry *Metrics, std::ostream *Log) {
  FuzzReport Report;
  std::vector<const Oracle *> Oracles =
      selectOracles(Registry, Options.OracleFilter);
  if (Oracles.empty()) {
    if (Log)
      *Log << "fuzz: no oracle matches '" << Options.OracleFilter << "'\n";
    return Report;
  }

  ProgramGenerator Generator(Options.Shape);
  std::vector<TaskResult> Slots(Options.Runs);

  exp::ParallelConfig Par;
  Par.Jobs = Options.Jobs;
  Par.Metrics = Metrics;
  Par.SeedBase = Options.SeedBase;
  exp::ParallelRunner Runner(Par);

  auto Task = [&](exp::ParallelRunner::TaskContext &Ctx) {
    uint64_t Seed = Options.SeedBase + Ctx.Index;
    TaskResult &Slot = Slots[Ctx.Index];
    Ctx.Metrics.counter("fuzz.runs") += 1;

    ProgramSpec Spec = Generator.makeSpec(Seed);
    bc::Program P = buildProgram(Spec);

    // A verifier rejection is a generator bug — report it through the
    // same violation channel so it is visible, reducible by hand, and
    // fails the campaign.
    if (bc::VerifyResult VR = bc::verifyProgram(P); !VR.ok()) {
      Violation V;
      V.Seed = Seed;
      V.OracleId = "verifier";
      V.Message = VR.str();
      V.OriginalAtoms = V.ReducedAtoms = Spec.atomCount();
      Artifact A;
      A.Seed = Seed;
      A.Shape = Options.Shape;
      A.OracleId = V.OracleId;
      A.Message = V.Message;
      A.Spec = Spec;
      V.ArtifactJson = writeArtifact(A);
      Slot.Violations.push_back(std::move(V));
      return;
    }

    for (const Oracle *O : Oracles) {
      ++Slot.OracleChecks;
      std::string Message = O->check({P, Seed});
      if (Message.empty())
        continue;

      Violation V;
      V.Seed = Seed;
      V.OracleId = O->id();
      V.OriginalAtoms = Spec.atomCount();

      ProgramSpec Final = Spec;
      if (Options.Reduce) {
        ReduceResult RR =
            reduceSpec(Spec, *O, Seed, std::move(Message), Options.Reducer);
        Slot.ReduceChecks += RR.ChecksUsed;
        Slot.ReduceAccepted += RR.Accepted;
        V.ReduceChecks = RR.ChecksUsed;
        Final = std::move(RR.Spec);
        Message = std::move(RR.Message);
      }
      V.ReducedAtoms = Final.atomCount();
      V.Message = Message;

      Artifact A;
      A.Seed = Seed;
      A.Shape = Options.Shape;
      A.OracleId = V.OracleId;
      A.Message = V.Message;
      A.Spec = std::move(Final);
      V.ArtifactJson = writeArtifact(A);
      Slot.Violations.push_back(std::move(V));
    }
  };

  auto Commit = [&](exp::ParallelRunner::TaskContext &Ctx) {
    TaskResult &Slot = Slots[Ctx.Index];
    ++Report.Runs;
    Report.OracleChecks += Slot.OracleChecks;
    if (Metrics) {
      Metrics->counter("fuzz.oracle_checks") += Slot.OracleChecks;
      Metrics->counter("fuzz.reduce_checks") += Slot.ReduceChecks;
      Metrics->counter("fuzz.reduce_accepted") += Slot.ReduceAccepted;
      Metrics->counter("fuzz.violations") += Slot.Violations.size();
    }
    for (Violation &V : Slot.Violations) {
      if (!Options.ArtifactDir.empty()) {
        std::string Path = Options.ArtifactDir + "/" + V.OracleId + "-seed" +
                           std::to_string(V.Seed) + ".json";
        std::ofstream Out(Path);
        Out << V.ArtifactJson << '\n';
        if (Out.good()) {
          V.ArtifactPath = Path;
          if (Metrics)
            Metrics->counter("fuzz.artifacts_written") += 1;
        } else if (Log) {
          *Log << "fuzz: cannot write artifact " << Path << "\n";
        }
      }
      if (Log) {
        *Log << "fuzz: seed " << V.Seed << " violates " << V.OracleId << ": "
             << V.Message << " (reduced " << V.OriginalAtoms << " -> "
             << V.ReducedAtoms << " atoms";
        if (!V.ArtifactPath.empty())
          *Log << ", artifact " << V.ArtifactPath;
        *Log << ")\n";
      }
      Report.Violations.push_back(std::move(V));
    }
    Slot = TaskResult(); // free per-task memory as the campaign drains
  };

  Runner.run(Options.Runs, Task, Commit);

  if (Log)
    *Log << "fuzz: " << Report.Runs << " runs, " << Report.OracleChecks
         << " oracle checks, " << Report.Violations.size() << " violations\n";
  return Report;
}

std::string fuzz::replayArtifact(const Artifact &A,
                                 const OracleRegistry &Registry,
                                 std::string &Error) {
  Error.clear();
  const Oracle *O = Registry.find(A.OracleId);
  if (!O) {
    Error = "unknown oracle '" + A.OracleId + "'";
    return "";
  }
  if (std::string Problem = validateSpec(A.Spec); !Problem.empty()) {
    Error = "invalid spec: " + Problem;
    return "";
  }
  bc::Program P = buildProgram(A.Spec);
  if (bc::VerifyResult VR = bc::verifyProgram(P); !VR.ok()) {
    Error = "rebuilt program fails verification: " + VR.str();
    return "";
  }
  return O->check({P, A.Seed});
}
