//===- fuzz/Reducer.h - Delta-debugging program reducer ---------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging over ProgramSpec: given a spec whose built
/// program violates an oracle, repeatedly try structure-shrinking
/// transformations and keep each one that still reproduces the
/// violation, until a fixpoint (or the check budget runs out). Works on
/// the spec, not the program, so every candidate rebuilds through
/// buildProgram and is verifier-clean by construction.
///
/// Transformations, in the order tried each round:
///  - drop a whole static method (call sites targeting it become
///    constant pushes; higher callee indices are remapped),
///  - drop a main call / worker / body step,
///  - drop a virtual implementation (at least one is kept; ImplIndex
///    references are remapped),
///  - halve loop trip counts and main/worker repeat counts.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_FUZZ_REDUCER_H
#define CBSVM_FUZZ_REDUCER_H

#include "fuzz/Oracle.h"
#include "fuzz/ProgramSpec.h"

namespace cbs::fuzz {

struct ReduceOptions {
  /// Ceiling on oracle re-checks (each candidate costs one). The greedy
  /// pass usually converges far below this; the bound keeps pathological
  /// cases from stalling a campaign.
  unsigned MaxChecks = 400;
};

struct ReduceResult {
  /// The minimized spec; equals the input if nothing could be removed.
  ProgramSpec Spec;
  /// The violation message of the *minimized* program (never empty —
  /// reduction only accepts candidates that still fail).
  std::string Message;
  /// Oracle invocations spent.
  unsigned ChecksUsed = 0;
  /// Candidates that still reproduced the violation.
  unsigned Accepted = 0;
};

/// Shrinks \p Spec while \p O keeps rejecting the built program.
/// \p Seed is the campaign seed the oracle was violated under (reduction
/// re-checks under the same seed). \p Message is the original violation
/// text, used as the result message if no candidate is accepted.
/// Precondition: buildProgram(Spec) currently fails \p O.
ReduceResult reduceSpec(const ProgramSpec &Spec, const Oracle &O,
                        uint64_t Seed, std::string Message,
                        const ReduceOptions &Options = {});

} // namespace cbs::fuzz

#endif // CBSVM_FUZZ_REDUCER_H
