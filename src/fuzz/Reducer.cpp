//===- fuzz/Reducer.cpp - Delta-debugging program reducer ------------------===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include <optional>

using namespace cbs;
using namespace cbs::fuzz;

namespace {

/// Runs one oracle check against the built candidate; empty = passes.
class CheckedReducer {
public:
  CheckedReducer(const Oracle &O, uint64_t Seed, const ReduceOptions &Options)
      : O(O), Seed(Seed), Options(Options) {}

  bool budgetLeft() const { return Result.ChecksUsed < Options.MaxChecks; }

  /// Returns the violation message if \p Candidate still fails (and
  /// charges one check), nullopt otherwise.
  std::optional<std::string> stillFails(const ProgramSpec &Candidate) {
    if (!budgetLeft() || !validateSpec(Candidate).empty())
      return std::nullopt;
    ++Result.ChecksUsed;
    bc::Program P = buildProgram(Candidate);
    std::string Message = O.check({P, Seed});
    if (Message.empty())
      return std::nullopt;
    return Message;
  }

  /// Accepts \p Candidate if it still fails; returns true on accept.
  bool tryAccept(ProgramSpec &Current, ProgramSpec Candidate) {
    std::optional<std::string> Message = stillFails(Candidate);
    if (!Message)
      return false;
    Current = std::move(Candidate);
    Result.Message = std::move(*Message);
    ++Result.Accepted;
    return true;
  }

  ReduceResult Result;

private:
  const Oracle &O;
  uint64_t Seed;
  const ReduceOptions &Options;
};

/// Removes method \p Victim: every CallStatic targeting it is unrolled
/// into a constant push (value 0 — the oracle decides whether that
/// still fails), and every callee index above it shifts down by one.
ProgramSpec dropMethod(const ProgramSpec &Spec, uint32_t Victim) {
  ProgramSpec Out = Spec;
  Out.Methods.erase(Out.Methods.begin() + Victim);
  auto Remap = [&](uint32_t Callee) { return Callee > Victim ? Callee - 1 : Callee; };
  for (MethodSpec &M : Out.Methods)
    for (StepSpec &S : M.Steps) {
      if (S.Kind != StepKind::CallStatic)
        continue;
      if (S.Callee == Victim) {
        S.Kind = StepKind::Push;
        S.A = S.B = 0;
        ValueSrc Zero;
        S.Values.assign(1, Zero);
      } else {
        S.Callee = Remap(S.Callee);
      }
    }
  // Main calls and workers targeting the victim are dropped outright
  // (unrolling them to a constant would change what main prints — let
  // the oracle veto if the print mattered).
  std::vector<CallSpec> Calls;
  for (const CallSpec &C : Out.MainCalls)
    if (C.Callee != Victim) {
      Calls.push_back(C);
      Calls.back().Callee = Remap(C.Callee);
    }
  Out.MainCalls = std::move(Calls);
  std::vector<WorkerSpec> Workers;
  for (const WorkerSpec &W : Out.Workers)
    if (W.Callee != Victim) {
      Workers.push_back(W);
      Workers.back().Callee = Remap(W.Callee);
    }
  Out.Workers = std::move(Workers);
  return Out;
}

/// Removes impl \p Victim (callers guarantee at least one remains) and
/// remaps CallVirtual references.
ProgramSpec dropImpl(const ProgramSpec &Spec, uint32_t Victim) {
  ProgramSpec Out = Spec;
  Out.Impls.erase(Out.Impls.begin() + Victim);
  for (MethodSpec &M : Out.Methods)
    for (StepSpec &S : M.Steps)
      if (S.Kind == StepKind::CallVirtual) {
        if (S.ImplIndex == Victim)
          S.ImplIndex = 0;
        else if (S.ImplIndex > Victim)
          --S.ImplIndex;
      }
  return Out;
}

} // namespace

ReduceResult fuzz::reduceSpec(const ProgramSpec &Spec, const Oracle &O,
                              uint64_t Seed, std::string Message,
                              const ReduceOptions &Options) {
  CheckedReducer R(O, Seed, Options);
  R.Result.Spec = Spec;
  R.Result.Message = std::move(Message);

  ProgramSpec &Current = R.Result.Spec;
  bool Changed = true;
  while (Changed && R.budgetLeft()) {
    Changed = false;

    // Drop whole static methods, last first (later methods are the DAG
    // roots; removing one can orphan — and thus unlock — many below).
    for (uint32_t M = static_cast<uint32_t>(Current.Methods.size());
         M-- > 0 && R.budgetLeft();)
      if (Current.Methods.size() > 1 &&
          R.tryAccept(Current, dropMethod(Current, M)))
        Changed = true;

    // Drop individual main calls (keep at least one so the program
    // still exercises the profiled path — a printless program passes
    // every differential oracle vacuously and stalls reduction).
    for (uint32_t C = static_cast<uint32_t>(Current.MainCalls.size());
         C-- > 0 && R.budgetLeft();) {
      if (Current.MainCalls.size() <= 1)
        break;
      ProgramSpec Candidate = Current;
      Candidate.MainCalls.erase(Candidate.MainCalls.begin() + C);
      if (R.tryAccept(Current, std::move(Candidate)))
        Changed = true;
    }

    // Drop workers.
    for (uint32_t W = static_cast<uint32_t>(Current.Workers.size());
         W-- > 0 && R.budgetLeft();) {
      ProgramSpec Candidate = Current;
      Candidate.Workers.erase(Candidate.Workers.begin() + W);
      if (R.tryAccept(Current, std::move(Candidate)))
        Changed = true;
    }

    // Drop body steps.
    for (uint32_t M = 0; M != Current.Methods.size() && R.budgetLeft(); ++M)
      for (uint32_t S = static_cast<uint32_t>(Current.Methods[M].Steps.size());
           S-- > 0 && R.budgetLeft();) {
        ProgramSpec Candidate = Current;
        MethodSpec &MS = Candidate.Methods[M];
        MS.Steps.erase(MS.Steps.begin() + S);
        if (R.tryAccept(Current, std::move(Candidate)))
          Changed = true;
      }

    // Drop virtual implementations (keep one).
    for (uint32_t I = static_cast<uint32_t>(Current.Impls.size());
         I-- > 0 && R.budgetLeft();)
      if (Current.Impls.size() > 1 && R.tryAccept(Current, dropImpl(Current, I)))
        Changed = true;

    // Halve loop trips and repeat counts (only counts as progress when
    // something actually shrank).
    ProgramSpec Halved = Current;
    bool Shrank = false;
    for (MethodSpec &M : Halved.Methods)
      for (StepSpec &S : M.Steps)
        if (S.Kind == StepKind::Loop && S.A > 1) {
          S.A /= 2;
          Shrank = true;
        }
    for (CallSpec &C : Halved.MainCalls)
      if (C.Repeat > 1) {
        C.Repeat /= 2;
        Shrank = true;
      }
    for (WorkerSpec &W : Halved.Workers)
      if (W.Repeat > 1) {
        W.Repeat /= 2;
        Shrank = true;
      }
    if (Shrank && R.tryAccept(Current, std::move(Halved)))
      Changed = true;
  }

  return R.Result;
}
