//===- fuzz/ProgramSpec.h - Reducible program description -------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation the fuzzer operates on. A
/// ProgramSpec is the *decision list* behind one generated program:
/// which virtual implementations exist, what each static method's body
/// does step by step, what main calls (and how often), and which worker
/// threads are spawned. Programs are built from specs deterministically
/// (buildProgram), so the delta-debugging reducer can mutate the spec —
/// drop a method, unroll a call to a constant, shrink a loop — and
/// rebuild a verifier-clean program after every mutation, which a flat
/// instruction vector would not survive.
///
/// The build rules keep any spec well-formed by construction:
///  - method i may only call methods j < i (the DAG that guarantees
///    termination), which every mutation preserves by remapping;
///  - steps that need operands consume the tracked operand stack when
///    it is deep enough and otherwise push their own recorded values,
///    so deleting an earlier step never unbalances a later one.
///
/// Specs serialize to JSON (the replay-artifact payload) and back.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_FUZZ_PROGRAMSPEC_H
#define CBSVM_FUZZ_PROGRAMSPEC_H

#include "bytecode/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cbs::json {
struct JsonValue;
class JsonWriter;
}

namespace cbs::fuzz {

/// Arithmetic flavour of one virtual implementation's body.
enum class ImplOp : uint8_t { Add, Mul, Xor };

/// One implementation of the program's single virtual selector.
struct ImplSpec {
  ImplOp Op = ImplOp::Add;
  /// Constant mixed into the argument.
  int32_t Operand = 1;
  /// Modelled work cycles appended to the body (0 = none).
  int32_t WorkCycles = 0;
};

/// Where a pushed value comes from at build time.
struct ValueSrc {
  bool FromArg = false;
  uint32_t Slot = 0; ///< argument slot when FromArg
  int32_t Const = 0; ///< literal otherwise
};

/// One body-building step of a static method.
enum class StepKind : uint8_t {
  Push,        ///< push Values[0]
  BinOp,       ///< A selects add/sub/mul/and/xor; degrades to Push when shallow
  Div,         ///< guarded division by constant A >= 1
  Accumulate,  ///< fold the stack top into the scratch local
  CallStatic,  ///< call method Callee (< this method's index) with Values args
  CallVirtual, ///< virtual dispatch on a fresh instance of impl ImplIndex
  Loop,        ///< counted loop: A iterations, B work cycles per trip (0=none)
  Diamond,     ///< branch diamond merging constant A or B
  FieldTrip,   ///< store constant A into a fresh object's field B (0 or 1)
};

struct StepSpec {
  StepKind Kind = StepKind::Push;
  int32_t A = 0;
  int32_t B = 0;
  uint32_t Callee = 0;    ///< CallStatic target (index into Methods)
  uint32_t ImplIndex = 0; ///< CallVirtual receiver class (index into Impls)
  /// Self-provided operands: Push/BinOp/Div/Accumulate/Diamond carry one
  /// fallback value, CallStatic carries one per callee argument,
  /// CallVirtual carries its single argument.
  std::vector<ValueSrc> Values;
};

struct MethodSpec {
  uint32_t NumArgs = 0;
  std::vector<StepSpec> Steps;
};

/// One call main performs (and prints the result of). Repeat > 1 wraps
/// the call in a counted loop — the phase-shift shape: consecutive
/// CallSpecs with large Repeats emphasize different callees over time.
struct CallSpec {
  uint32_t Callee = 0;
  std::vector<int32_t> Args;
  uint32_t Repeat = 1;
};

/// One spawned worker thread: a static void wrapper that calls Callee
/// Repeat times and discards the results (workers never print, so
/// program output stays independent of thread interleaving).
struct WorkerSpec {
  uint32_t Callee = 0;
  std::vector<int32_t> Args;
  uint32_t Repeat = 1;
};

struct ProgramSpec {
  std::vector<ImplSpec> Impls;     ///< at least one
  std::vector<MethodSpec> Methods; ///< DAG order: i calls only j < i
  std::vector<CallSpec> MainCalls;
  std::vector<WorkerSpec> Workers;

  /// Reduction progress measure: total number of spec atoms (impls,
  /// methods, steps, main calls, workers). Strictly decreases under
  /// every dropping transformation.
  size_t atomCount() const;
};

/// Deterministically materializes \p Spec as a verifier-clean program.
/// Any spec whose cross-references are in range (checked by
/// validateSpec) builds successfully.
bc::Program buildProgram(const ProgramSpec &Spec);

/// Structural validity: at least one impl, call targets in range and
/// DAG-ordered, impl indices in range, argument value lists sized to
/// their callee. Returns an empty string when fine, else a description
/// of the first problem.
std::string validateSpec(const ProgramSpec &Spec);

/// Writes \p Spec as a JSON object onto \p W.
void writeSpec(const ProgramSpec &Spec, json::JsonWriter &W);

/// Parses a spec previously written by writeSpec. Returns the spec, or
/// sets \p Error and returns an empty spec.
ProgramSpec parseSpec(const json::JsonValue &V, std::string &Error);

} // namespace cbs::fuzz

#endif // CBSVM_FUZZ_PROGRAMSPEC_H
