//===- fuzz/ProgramGenerator.h - Seeded program generator -------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded random-program generator behind the differential fuzzer
/// (and the property-test suites). Generation is split in two stages:
/// a seed expands into a ProgramSpec — the mutable decision list the
/// reducer shrinks — and buildProgram materializes the spec as a
/// verifier-clean bc::Program. Same (config, seed) always yields the
/// same spec and therefore the same program.
///
/// Generated programs have:
///   - a DAG of static methods (method i calls only j < i, so they
///     terminate),
///   - a small class family with a virtual selector (so guarded
///     inlining has something to do),
///   - bounded counted loops, branch diamonds, field traffic, and
///     guarded division,
/// and, depending on the shape knobs, repeated phase-shifted main call
/// loops and spawned worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_FUZZ_PROGRAMGENERATOR_H
#define CBSVM_FUZZ_PROGRAMGENERATOR_H

#include "fuzz/ProgramSpec.h"

namespace cbs::json {
struct JsonValue;
class JsonWriter;
}

namespace cbs::fuzz {

/// Knobs controlling generated program shape. All ranges are
/// inclusive; the defaults reproduce the original hand-tuned test
/// generator (small, fast, single-threaded programs).
struct ShapeConfig {
  /// Static-method DAG size (depth and width grow together: later
  /// methods call earlier ones).
  uint32_t MinMethods = 3;
  uint32_t MaxMethods = 7;
  /// Maximum int arguments per static method.
  uint32_t MaxArgs = 2;
  /// Virtual-dispatch fan-out: number of selector implementations.
  uint32_t MinVirtualImpls = 1;
  uint32_t MaxVirtualImpls = 3;
  /// Body-building steps per static method.
  uint32_t MinSteps = 4;
  uint32_t MaxSteps = 17;
  /// Counted-loop trip count ceiling.
  uint32_t MaxLoopTrip = 6;
  /// Calls performed (and printed) by main.
  uint32_t MinMainCalls = 2;
  uint32_t MaxMainCalls = 5;
  /// Ceiling on per-call repeat loops in main. 1 = straight-line main;
  /// larger values produce phase-shift programs whose hot callee
  /// changes over the run.
  uint32_t MaxCallRepeat = 1;
  /// Worker threads spawned from main (0 = single-threaded). Workers
  /// call into the method DAG but never print, so program output stays
  /// independent of thread interleaving.
  uint32_t MaxWorkerThreads = 0;
  /// Ceiling on each worker's call-repeat loop.
  uint32_t MaxWorkerRepeat = 8;

  /// A multi-threaded, phase-shifting variant of the defaults.
  static ShapeConfig threaded();

  /// A long-loop variant of the defaults: high trip counts and repeated
  /// main call loops, so frames sit inside loops long enough for
  /// installs (and invalidations) to land mid-loop. The shape the
  /// osr-stability oracle favours — on-stack replacement never fires in
  /// a program whose loops finish before the compile queue does.
  static ShapeConfig longLoops();
};

/// Serialization of the knobs (embedded in replay artifacts so a
/// reproduced campaign regenerates identical programs).
void writeShape(const ShapeConfig &Shape, json::JsonWriter &W);
ShapeConfig parseShape(const json::JsonValue &V, std::string &Error);

class ProgramGenerator {
public:
  explicit ProgramGenerator(ShapeConfig Shape = {}) : Shape(Shape) {}

  const ShapeConfig &shape() const { return Shape; }

  /// Expands \p Seed into the decision list. Deterministic.
  ProgramSpec makeSpec(uint64_t Seed) const;

  /// Convenience: makeSpec + buildProgram.
  bc::Program generate(uint64_t Seed) const {
    return buildProgram(makeSpec(Seed));
  }

private:
  ShapeConfig Shape;
};

/// Backwards-compatible entry point used by the property-test suites:
/// the default-shape generator.
inline bc::Program generateRandomProgram(uint64_t Seed) {
  return ProgramGenerator().generate(Seed);
}

} // namespace cbs::fuzz

#endif // CBSVM_FUZZ_PROGRAMGENERATOR_H
