//===- bench/micro_compile_queue.cpp - compile pipeline cost --------------------===//
//
// Part of the CBSVM project.
//
// Host-time microbenchmarks of the background compile pipeline: the
// queue's enqueue/popReady/coalesce/pendingLevel operations at realistic
// depths (the queue is linear-scanned on the VM thread, so these bound
// the per-yieldpoint cost when requests are pending), the worker pool's
// submit-to-get round trip, and — the acceptance gate — whole-VM
// throughput with the adaptive system attached at jobs 0 vs jobs 4.
// The jobs pair must be within noise of each other: worker threads only
// move the opt::compileMethod call off the VM thread, they never add
// virtual-time work.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "aos/CompileQueue.h"
#include "opt/InlineOracle.h"
#include "support/ArgParser.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cbs;

namespace {

aos::CompileRequest makeRequest(bc::MethodId Method, double Priority,
                                aos::CompileQueue &Q) {
  aos::CompileRequest R;
  R.Method = Method;
  R.Level = 1;
  R.Priority = Priority;
  R.Seq = Q.nextSeq();
  return R;
}

} // namespace

// Enqueue + popReady round trip with Arg(0) other entries resident: the
// linear scans the VM thread pays at a yieldpoint with work pending.
static void BM_QueueEnqueuePop(benchmark::State &State) {
  const size_t Resident = static_cast<size_t>(State.range(0));
  aos::CompileQueue Q(Resident + 1);
  for (size_t I = 0; I != Resident; ++I)
    // Never ready: the resident entries only pay scan cost.
    [&] {
      aos::CompileRequest R = makeRequest(static_cast<bc::MethodId>(I), 5, Q);
      R.ReadyCycle = UINT64_MAX;
      Q.enqueue(std::move(R));
    }();
  uint32_t Method = 1'000;
  for (auto _ : State) {
    Q.enqueue(makeRequest(++Method, 9, Q));
    benchmark::DoNotOptimize(Q.popReady(/*Now=*/UINT64_MAX - 1));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_QueueEnqueuePop)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

// A duplicate request coalescing into a full queue of Arg(0) entries.
static void BM_QueueCoalesce(benchmark::State &State) {
  const size_t Depth = static_cast<size_t>(State.range(0));
  aos::CompileQueue Q(Depth);
  for (size_t I = 0; I != Depth; ++I) {
    aos::CompileRequest R = makeRequest(static_cast<bc::MethodId>(I), 5, Q);
    R.ReadyCycle = UINT64_MAX;
    Q.enqueue(std::move(R));
  }
  double Priority = 6;
  for (auto _ : State) {
    // Same method, rising priority: always hits the coalesce path.
    aos::CompileRequest R =
        makeRequest(static_cast<bc::MethodId>(Depth - 1), Priority, Q);
    Priority += 1e-9;
    benchmark::DoNotOptimize(Q.enqueue(std::move(R)));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_QueueCoalesce)->Arg(4)->Arg(16)->Arg(64);

static void BM_QueuePendingLevel(benchmark::State &State) {
  const size_t Depth = static_cast<size_t>(State.range(0));
  aos::CompileQueue Q(Depth);
  for (size_t I = 0; I != Depth; ++I) {
    aos::CompileRequest R = makeRequest(static_cast<bc::MethodId>(I), 5, Q);
    R.ReadyCycle = UINT64_MAX;
    Q.enqueue(std::move(R));
  }
  uint32_t Method = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Q.pendingLevel(Method % (Depth * 2)));
    ++Method;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_QueuePendingLevel)->Arg(4)->Arg(16)->Arg(64);

// Worker-pool round trip: submit one compile and block on the future.
// This is the wall-clock latency a jobs>=1 install point pays when the
// worker has not finished yet (the worst case; usually it has).
static void BM_WorkerPoolRoundTrip(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Small, 1);
  aos::CompileWorkerPool Pool(P, vm::CostModel(), opt::CompileOptions(),
                              /*NumThreads=*/2);
  auto Plan = std::make_shared<const opt::InlinePlan>();
  for (auto _ : State)
    benchmark::DoNotOptimize(Pool.submit(/*Method=*/0, /*Level=*/1, Plan).get());
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_WorkerPoolRoundTrip);

namespace {

// Whole-VM throughput with the adaptive system attached. The jobs 0/4
// pair is the acceptance gate: identical virtual-time work, so host
// throughput must match within noise (workers only overlap the
// compileMethod calls).
void runWithAOS(benchmark::State &State, uint32_t CompileJobs) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  static opt::NewJikesOracle Oracle;
  aos::AOSConfig AC;
  AC.CompileJobs = CompileJobs;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  VM.run(1'000'000); // Warm the code cache.
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}

} // namespace

static void BM_InterpreterAOSJobs0(benchmark::State &State) {
  runWithAOS(State, /*CompileJobs=*/0);
}
BENCHMARK(BM_InterpreterAOSJobs0);

static void BM_InterpreterAOSJobs4(benchmark::State &State) {
  runWithAOS(State, /*CompileJobs=*/4);
}
BENCHMARK(BM_InterpreterAOSJobs4);

int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
