//===- bench/table2b_j9_sweep.cpp - Table 2B reproduction ----------------------===//
//
// Part of the CBSVM project.
//
// Table 2B: the same Stride x Samples grid as Table 2A, on the J9
// personality (overloaded method-entry check; entries are the only
// invocation events). The paper's point: despite the two VMs'
// differences, the trends are the same — (1,1) ~37% accuracy, a knee
// like Stride=7/Samples=32 at ~69% accuracy for ~0.5% overhead.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Table 2B");
  unsigned Jobs = jobsFromArgs(Args);
  uint64_t Seed = seedFromArgs(Args);
  Args.finish();
  printHeader("Table 2B",
              "Overhead%/Accuracy over the Stride x Samples grid (J9 "
              "personality)");

  std::vector<uint32_t> Strides = {1, 3, 7, 15, 31, 63};
  std::vector<uint32_t> Samples = {1,  2,   4,   8,    16,  32,
                                   64, 128, 256, 1024, 4096, 8192};
  unsigned Runs = exp::envRuns(3);

  std::vector<const wl::WorkloadInfo *> Workloads;
  for (const wl::WorkloadInfo &W : wl::suite())
    Workloads.push_back(&W);

  std::printf("benchmarks: all %zu (small inputs); runs per cell: %u "
              "(CBSVM_RUNS)\n\n",
              Workloads.size(), Runs);

  tel::MetricRegistry RunnerMetrics;
  exp::ParallelConfig Par;
  Par.Jobs = Jobs;
  Par.Metrics = &RunnerMetrics;
  exp::SweepResult R =
      exp::runSweep(vm::Personality::J9, Workloads, wl::InputSize::Small,
                    Strides, Samples, Runs, Seed, Par);
  printRunnerSummary(RunnerMetrics);

  TablePrinter TP;
  std::vector<std::string> Header{"Samples\\Stride"};
  for (uint32_t S : R.Strides)
    Header.push_back(std::to_string(S));
  TP.setHeader(Header);
  // The JSON mirror splits the "overhead/accuracy" cells into two
  // numeric tables.
  Report.note("personality", "j9");
  Report.note("runs", std::to_string(Runs));
  Report.beginTable("overhead_pct", Header);
  for (size_t SI = 0; SI != R.SamplesPerTick.size(); ++SI) {
    std::vector<std::string> Row{std::to_string(R.SamplesPerTick[SI])};
    for (size_t TI = 0; TI != R.Strides.size(); ++TI)
      Row.push_back(
          TablePrinter::formatDouble(R.Cells[SI][TI].OverheadPct, 3));
    Report.addRow(Row);
  }
  Report.beginTable("accuracy_pct", Header);
  for (size_t SI = 0; SI != R.SamplesPerTick.size(); ++SI) {
    std::vector<std::string> Row{std::to_string(R.SamplesPerTick[SI])};
    for (size_t TI = 0; TI != R.Strides.size(); ++TI)
      Row.push_back(
          TablePrinter::formatDouble(R.Cells[SI][TI].AccuracyPct, 2));
    Report.addRow(Row);
  }
  for (size_t SI = 0; SI != R.SamplesPerTick.size(); ++SI) {
    std::vector<std::string> Row{std::to_string(R.SamplesPerTick[SI])};
    for (size_t TI = 0; TI != R.Strides.size(); ++TI)
      Row.push_back(cell(R.Cells[SI][TI]));
    TP.addRow(Row);
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\ncell = overhead%% / accuracy (overlap %%, 0-100)\n");
  std::printf("paper landmarks: (1,1) ~= -/37; (7,32) ~= 0.5/69\n");
  return 0;
}
