//===- bench/table2a_jikes_sweep.cpp - Table 2A reproduction -------------------===//
//
// Part of the CBSVM project.
//
// Table 2A: overhead and accuracy of counter-based sampling on the
// Jikes RVM personality, over a grid of Stride (columns) and
// Samples-per-timer-tick (rows). Each cell prints "overhead%/accuracy".
// Values are the average over all benchmarks (small inputs), median
// over CBSVM_RUNS seeds.
//
// The paper's landmarks to compare against: the (1,1) corner is the
// original timer-quality profile (~38% accuracy); a knee such as
// Stride=3/Samples=32 reaches ~1.7x that accuracy for ~0.3% overhead;
// the bottom rows buy little extra accuracy for overhead that climbs
// into the tens of percent.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Table 2A");
  unsigned Jobs = jobsFromArgs(Args);
  uint64_t Seed = seedFromArgs(Args);
  Args.finish();
  printHeader("Table 2A",
              "Overhead%/Accuracy over the Stride x Samples grid (Jikes "
              "RVM personality)");

  std::vector<uint32_t> Strides = {1, 3, 7, 15, 31, 63};
  std::vector<uint32_t> Samples = {1,  2,   4,   8,    16,  32,
                                   64, 128, 256, 1024, 4096, 8192};
  unsigned Runs = exp::envRuns(3);

  std::vector<const wl::WorkloadInfo *> Workloads;
  for (const wl::WorkloadInfo &W : wl::suite())
    Workloads.push_back(&W);

  std::printf("benchmarks: all %zu (small inputs); runs per cell: %u "
              "(CBSVM_RUNS)\n\n",
              Workloads.size(), Runs);

  tel::MetricRegistry RunnerMetrics;
  exp::ParallelConfig Par;
  Par.Jobs = Jobs;
  Par.Metrics = &RunnerMetrics;
  exp::SweepResult R =
      exp::runSweep(vm::Personality::JikesRVM, Workloads,
                    wl::InputSize::Small, Strides, Samples, Runs, Seed, Par);
  printRunnerSummary(RunnerMetrics);

  TablePrinter TP;
  std::vector<std::string> Header{"Samples\\Stride"};
  for (uint32_t S : R.Strides)
    Header.push_back(std::to_string(S));
  TP.setHeader(Header);
  // The JSON mirror splits the "overhead/accuracy" cells into two
  // numeric tables.
  Report.note("personality", "jikes");
  Report.note("runs", std::to_string(Runs));
  Report.beginTable("overhead_pct", Header);
  for (size_t SI = 0; SI != R.SamplesPerTick.size(); ++SI) {
    std::vector<std::string> Row{std::to_string(R.SamplesPerTick[SI])};
    for (size_t TI = 0; TI != R.Strides.size(); ++TI)
      Row.push_back(
          TablePrinter::formatDouble(R.Cells[SI][TI].OverheadPct, 3));
    Report.addRow(Row);
  }
  Report.beginTable("accuracy_pct", Header);
  for (size_t SI = 0; SI != R.SamplesPerTick.size(); ++SI) {
    std::vector<std::string> Row{std::to_string(R.SamplesPerTick[SI])};
    for (size_t TI = 0; TI != R.Strides.size(); ++TI)
      Row.push_back(
          TablePrinter::formatDouble(R.Cells[SI][TI].AccuracyPct, 2));
    Report.addRow(Row);
  }
  for (size_t SI = 0; SI != R.SamplesPerTick.size(); ++SI) {
    std::vector<std::string> Row{std::to_string(R.SamplesPerTick[SI])};
    for (size_t TI = 0; TI != R.Strides.size(); ++TI)
      Row.push_back(cell(R.Cells[SI][TI]));
    TP.addRow(Row);
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\ncell = overhead%% / accuracy (overlap %%, 0-100)\n");
  std::printf("paper landmarks: (1,1) ~= -/38; (3,32) ~= 0.3/66; large "
              "samples rows cost tens of %% overhead\n");
  return 0;
}
