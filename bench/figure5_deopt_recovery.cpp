//===- bench/figure5_deopt_recovery.cpp - phased recovery ablation --------------===//
//
// Part of the CBSVM project.
//
// Figure 5 companion: what guarded speculative inlining costs when its
// assumptions die, and what deoptimization buys back. The phased
// workload runs two equally long phases with disjoint hot call sets;
// versions compiled during phase A guard-inline phase-A receivers, so
// in phase B every guarded dispatch pays its guard tests and falls back
// to the real virtual call.
//
// Same-level reoptimization is disabled in both adaptive arms, so the
// only post-shift repair channel is guard policing: the `stale` arm
// keeps the phase-A code to the end (the regression), the `deopt` arm
// invalidates it and recompiles against the phase-B profile (the
// recovery). The no-AOS interpreter row anchors the scale. All runs
// are virtual-time deterministic: the cycle counts are exact, not
// sampled, so no repetition is needed.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/InlineOracle.h"
#include "workloads/Patterns.h"

using namespace cbs;
using namespace cbs::bench;

namespace {

/// One hot method whose single virtual site flips its dominant
/// receiver mid-run: phase A dispatches every call to class A, phase B
/// to class B. Unlike the phased workload (whose phases run *disjoint*
/// methods, so stale phase-A code simply stops executing), the stale
/// speculative version here keeps running through phase B, paying its
/// guard tests and the fallback dispatch on every call — the cost
/// dominance-loss policing exists to recover.
///
/// \p PerCall sets the frame lifetime: each loop() invocation runs that
/// many iterations, so PerCall == PerPhase means one frame spans an
/// entire phase. Without OSR a deopted frame runs at baseline speed
/// until it returns, so short-lived frames (small PerCall) are the
/// only shape plain deoptimization repairs; the long-lived rows below
/// measure what the OSR arm buys back for the other shape.
bc::Program receiverFlipProgram(int64_t PerPhase, int64_t PerCall) {
  const int64_t Calls = PerPhase / PerCall;
  bc::ProgramBuilder PB;
  wl::ClassFamily Family = wl::makeClassFamily(PB, "FlipHandler", 2);
  bc::SelectorId Sel = PB.addSelector("handle", 2);
  wl::implementSelector(PB, Family, Sel, {6, 6}, {3, 3});

  // loop(count, pick): locals 0 count, 1 pick, 2 acc, 3..4 receivers.
  bc::MethodId Loop =
      PB.declareStatic("loop", {bc::ValKind::Int, bc::ValKind::Int},
                       /*HasResult=*/true, bc::ValKind::Int);
  {
    bc::MethodBuilder MB = PB.defineMethod(Loop);
    MB.iconst(0).istore(2);
    wl::emitReceiverInit(MB, Family.Subclasses, /*FirstSlot=*/3);
    bc::Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.work(30);
    wl::emitPickReceiver(MB, 1, {{3, 8}, {4, 16}}, 16);
    MB.iload(0).invokeVirtual(Sel).iload(2).iadd().istore(2);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(2).iret();
    MB.finish();
  }

  // drive(calls, pick): locals 0 calls, 1 pick, 2 acc.
  bc::MethodId Drive =
      PB.declareStatic("drive", {bc::ValKind::Int, bc::ValKind::Int},
                       /*HasResult=*/true, bc::ValKind::Int);
  {
    bc::MethodBuilder MB = PB.defineMethod(Drive);
    MB.iconst(0).istore(2);
    bc::Label Head = MB.newLabel(), Exit = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.iconst(PerCall).iload(1).invokeStatic(Loop).iload(2).iadd().istore(2);
    MB.iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(2).iret();
    MB.finish();
  }

  bc::MethodId Main = PB.declareStatic("main");
  {
    bc::MethodBuilder MB = PB.defineMethod(Main);
    MB.iconst(Calls).iconst(0).invokeStatic(Drive).istore(0);
    MB.iconst(Calls).iconst(15).invokeStatic(Drive).iload(0).iadd().istore(0);
    MB.iload(0).print();
    MB.finish();
  }
  return PB.finish(Main);
}

struct ArmResult {
  uint64_t Cycles = 0;
  aos::DeoptStats Deopt;
  uint64_t Recompilations = 0;
};

vm::VMConfig phasedConfig(const bc::Program &P, uint64_t Seed) {
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, Seed);
  Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
  // Decay plus the quality monitor: the profile must track the shift
  // (or neither arm would ever learn about phase B), and the monitor's
  // phase-shift flag is one of the two deopt triggers.
  Config.Profiler.DecayEveryTicks = 8;
  Config.Profiler.DecayFactor = 0.8;
  Config.Profiler.Quality.EveryTicks = 8;
  Config.Profiler.Quality.PhaseShiftOverlapPct = 70.0;
  return Config;
}

ArmResult runInterpreter(const bc::Program &P, uint64_t Seed) {
  vm::VMConfig Config = phasedConfig(P, Seed);
  vm::VirtualMachine VM(P, Config);
  if (VM.run() != vm::RunState::Finished)
    std::fprintf(stderr, "warning: interpreter arm did not finish\n");
  return {VM.stats().Cycles, {}, 0};
}

ArmResult runAdaptive(const bc::Program &P, bool DeoptOn, bool OsrOn,
                      double LatencyScale, uint64_t Seed) {
  vm::VMConfig Config = phasedConfig(P, Seed);
  Config.Costs.CompileLatencyScale = LatencyScale;
  Config.EnableOSR = OsrOn;

  aos::AOSConfig AC;
  // Isolate the mechanism under test: with same-level reoptimization
  // off, nothing but the deopt path can replace phase-A code.
  AC.MaxReoptsPerMethod = 0;
  AC.Deopt.Enabled = DeoptOn;
  AC.Deopt.DominanceThresholdPct = 40.0;

  static opt::NewJikesOracle Oracle;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  if (VM.run() != vm::RunState::Finished)
    std::fprintf(stderr, "warning: adaptive arm did not finish\n");

  ArmResult R;
  R.Cycles = VM.stats().Cycles;
  R.Recompilations = AOS.stats().Recompilations;
  if (AOS.deoptController())
    R.Deopt = AOS.deoptController()->stats();
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Figure 5 (deopt recovery)");
  uint64_t Seed = seedFromArgs(Args);
  Args.finish();
  printHeader("Figure 5 (deopt recovery)",
              "Phased workload: stale speculative code vs guard policing");

  std::vector<std::string> Header{
      "input/latency", "interp Mcyc", "stale Mcyc",  "deopt Mcyc",
      "osr Mcyc",      "recovery %",  "osr rec %",   "deopts",
      "guard fails",   "recompiles"};

  // Four arms per row: no AOS, AOS without policing (stale), policing
  // alone (deopt), and policing plus on-stack replacement (osr). The
  // recovery columns are the cycle saving of the deopt and osr arms
  // relative to running phase B through phase-A speculation.
  auto emitRow = [&](TablePrinter &Table, const char *Label,
                     const bc::Program &P, double Latency) {
    ArmResult Interp = runInterpreter(P, Seed);
    ArmResult Stale =
        runAdaptive(P, /*DeoptOn=*/false, /*OsrOn=*/false, Latency, Seed);
    ArmResult Deopt =
        runAdaptive(P, /*DeoptOn=*/true, /*OsrOn=*/false, Latency, Seed);
    ArmResult Osr =
        runAdaptive(P, /*DeoptOn=*/true, /*OsrOn=*/true, Latency, Seed);
    auto RecoveryPct = [&Stale](uint64_t ArmCycles) {
      return Stale.Cycles ? 100.0 *
                                (static_cast<double>(Stale.Cycles) -
                                 static_cast<double>(ArmCycles)) /
                                static_cast<double>(Stale.Cycles)
                          : 0.0;
    };
    std::vector<std::string> Cells{
        Label,
        TablePrinter::formatDouble(Interp.Cycles / 1e6, 1),
        TablePrinter::formatDouble(Stale.Cycles / 1e6, 1),
        TablePrinter::formatDouble(Deopt.Cycles / 1e6, 1),
        TablePrinter::formatDouble(Osr.Cycles / 1e6, 1),
        TablePrinter::formatDouble(RecoveryPct(Deopt.Cycles), 2),
        TablePrinter::formatDouble(RecoveryPct(Osr.Cycles), 2),
        std::to_string(Deopt.Deopt.Deopts),
        std::to_string(Deopt.Deopt.GuardFailures),
        std::to_string(Deopt.Deopt.Recompiles)};
    Table.addRow(Cells);
    Report.addRow(Cells);
  };

  TablePrinter TP;
  TP.setHeader(Header);
  Report.beginTable("phased_recovery", Header);

  struct Row {
    const char *Label;
    wl::InputSize Size;
    double Latency;
  };
  const Row Rows[] = {
      {"small/1x", wl::InputSize::Small, 1.0},
      {"small/25x", wl::InputSize::Small, 25.0},
      {"large/1x", wl::InputSize::Large, 1.0},
  };
  for (const Row &R : Rows)
    emitRow(TP, R.Label, wl::buildPhased(R.Size, Seed), R.Latency);
  std::fputs(TP.render().c_str(), stdout);

  std::printf("\n--- receiver flip: one hot site whose dominant callee "
              "changes mid-run ---\n");
  struct FlipRow {
    const char *Label;
    int64_t PerPhase;
    int64_t PerCall;
    double Latency;
  };
  // Short-lived frames: each loop() frame covers 500 iterations, so the
  // recompiled version is re-entered a few calls after the deopt.
  TablePrinter FlipTP;
  FlipTP.setHeader(Header);
  Report.beginTable("receiver_flip", Header);
  const FlipRow FlipRows[] = {
      {"60k/1x", 60'000, 500, 1.0},
      {"300k/1x", 300'000, 500, 1.0},
      {"300k/25x", 300'000, 500, 25.0},
  };
  for (const FlipRow &R : FlipRows)
    emitRow(FlipTP, R.Label, receiverFlipProgram(R.PerPhase, R.PerCall),
            R.Latency);
  std::fputs(FlipTP.render().c_str(), stdout);

  std::printf("\n--- receiver flip, long-lived frames: one loop() frame "
              "spans an entire phase ---\n");
  // The shape plain deoptimization cannot repair: the deopted frame
  // never returns inside the phase, so without OSR it limps to the end
  // at baseline speed and the recompiled version is never entered. The
  // osr arm transfers the live frame at the next backedge yieldpoint.
  TablePrinter LongTP;
  LongTP.setHeader(Header);
  Report.beginTable("receiver_flip_long", Header);
  const FlipRow LongRows[] = {
      {"60k/1x", 60'000, 60'000, 1.0},
      {"300k/1x", 300'000, 300'000, 1.0},
      {"300k/25x", 300'000, 300'000, 25.0},
  };
  for (const FlipRow &R : LongRows)
    emitRow(LongTP, R.Label, receiverFlipProgram(R.PerPhase, R.PerCall),
            R.Latency);
  std::fputs(LongTP.render().c_str(), stdout);

  std::printf("\nrecovery %% is the cycle saving of guard policing over the "
              "stale-plan arm,\nosr rec %% the saving when policing can also "
              "transfer live frames at\nbackedge yieldpoints; both arms run "
              "with same-level reoptimization\ndisabled, so policing is the "
              "only repair channel. Runs are virtual-time\nexact (no "
              "repetition needed).\n");
  return 0;
}
