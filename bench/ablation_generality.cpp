//===- bench/ablation_generality.cpp - §8: CBS beyond call graphs ----------------===//
//
// Part of the CBSVM project.
//
// §8: "the sampling technique is fairly general. It could be applied
// any time it is desirable to use low overhead timer-based sampling to
// collect frequency-based profile data." This bench applies the same
// CounterBasedSampler state machine to *allocation* events and scores
// the sampled per-class allocation histogram against the heap's
// exhaustive counts, over the allocation-heavy workloads — same knee
// shape as the call-graph tables: a handful of samples per tick buys
// most of the accuracy at negligible cost.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  printHeader("Ablation: generality (§8)",
              "the same sampler over allocation events");

  TablePrinter TP;
  TP.setHeader({"Benchmark", "samples/tick", "alloc acc", "ovh %"});

  for (const char *Name : {"jbb", "mtrt", "ipsixql", "kawa"}) {
    const wl::WorkloadInfo *W = wl::findWorkload(Name);
    bc::Program P = W->Build(wl::InputSize::Small, 1);

    // Unprofiled baseline for overhead.
    uint64_t BaseCycles;
    prof::AllocationProfile Truth;
    {
      vm::VMConfig Config =
          exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
      vm::VirtualMachine VM(P, Config);
      VM.run();
      BaseCycles = VM.stats().Cycles;
      Truth = VM.trueAllocationProfile();
    }

    for (uint32_t Samples : {1u, 4u, 16u, 64u}) {
      vm::VMConfig Config =
          exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
      Config.Profiler.ProfileAllocations = true;
      Config.Profiler.AllocCBS.Stride = 3;
      Config.Profiler.AllocCBS.SamplesPerTick = Samples;
      vm::VirtualMachine VM(P, Config);
      VM.run();
      double Acc = VM.allocationProfile().overlapWith(Truth);
      double Ovh = 100.0 *
                   (static_cast<double>(VM.stats().Cycles) - BaseCycles) /
                   BaseCycles;
      TP.addRow({Name, std::to_string(Samples),
                 TablePrinter::formatDouble(Acc, 0),
                 TablePrinter::formatDouble(Ovh, 2)});
    }
    TP.addSeparator();
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\nalloc acc = overlap of the sampled per-class allocation "
              "histogram with the\nheap's exhaustive counts. The "
              "frequency-profile recipe (timer arms a window,\ncounter "
              "strides through it) transfers unchanged.\n");
  return 0;
}
