//===- bench/figure_warm_start.cpp - repository warm-start time-to-peak --------===//
//
// Part of the CBSVM project.
//
// Companion figure for the profile repository (DESIGN.md §15): how much
// earlier optimized code lands when a run warm-starts from the profile
// a previous run committed. Every workload runs to completion twice —
// cold, then warm-started from the cold run's own collected DCG (the
// exact snapshot `cbsvm run --profile-repo` would have persisted) —
// and the table compares the first-install virtual cycle of the two.
//
// Expected shape: the warm column is strictly earlier than the cold
// column wherever the cold run installed anything at all — warm starts
// pre-enqueue the persisted hot methods at cycle 0, so the first
// install waits only for the modelled compile latency instead of for
// the profiler to rediscover the hot region. The warm run's *outputs*
// are semantically identical to the cold run's; only the timing of
// optimized code changes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <memory>

using namespace cbs;
using namespace cbs::bench;

namespace {

struct WorkloadResult {
  exp::WarmStartRun Cold;
  exp::WarmStartRun Warm;
};

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Warm start");
  unsigned Jobs = jobsFromArgs(Args);
  uint64_t Seed = seedFromArgs(Args);
  Args.finish();
  printHeader("Warm start",
              "Profile-repository warm start: time to first optimized install");

  opt::NewJikesOracle NewInliner;
  const std::vector<wl::WorkloadInfo> &Suite = wl::suite();
  std::vector<WorkloadResult> Results(Suite.size());

  tel::MetricRegistry RunnerMetrics;
  exp::ParallelConfig Par;
  Par.Jobs = Jobs;
  Par.Metrics = &RunnerMetrics;
  exp::ParallelRunner Runner(Par);

  TablePrinter TP;
  std::vector<std::string> Header{
      "Benchmark",    "cold first kcyc", "warm first kcyc", "earlier %",
      "warm enqueued", "warm installs"};
  TP.setHeader(Header);
  Report.beginTable("warm_start", Header);

  Runner.run(
      Suite.size(),
      [&](exp::ParallelRunner::TaskContext &Ctx) {
        bc::Program P = Suite[Ctx.Index].Build(wl::InputSize::Small, Seed);
        WorkloadResult &R = Results[Ctx.Index];
        R.Cold = exp::runWarmStart(P, vm::Personality::JikesRVM, &NewInliner,
                                   /*Warm=*/nullptr, Seed);
        // The warm run consumes exactly the snapshot the cold run would
        // have committed to a fresh repository entry.
        auto Persisted =
            std::make_shared<const prof::DCGSnapshot>(R.Cold.Profile);
        R.Warm = exp::runWarmStart(P, vm::Personality::JikesRVM, &NewInliner,
                                   Persisted, Seed);
        Ctx.Metrics.counter("exp.vm_runs") += 2;
      },
      [&](exp::ParallelRunner::TaskContext &Ctx) {
        const WorkloadResult &R = Results[Ctx.Index];
        double EarlierPct =
            R.Cold.FirstInstallCycle == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(R.Warm.FirstInstallCycle) /
                                     static_cast<double>(
                                         R.Cold.FirstInstallCycle));
        std::vector<std::string> Row{
            std::string(Suite[Ctx.Index].Name),
            TablePrinter::formatDouble(R.Cold.FirstInstallCycle / 1e3, 1),
            TablePrinter::formatDouble(R.Warm.FirstInstallCycle / 1e3, 1),
            TablePrinter::formatDouble(EarlierPct, 1),
            std::to_string(R.Warm.WarmEnqueued),
            std::to_string(R.Warm.WarmInstalls)};
        TP.addRow(Row);
        Report.addRow(Row);
      });

  std::fputs(TP.render().c_str(), stdout);
  std::printf(
      "\nReading: wherever the cold run installed optimized code at all "
      "(cold first > 0), the warm column must be strictly earlier — the "
      "repository's pre-enqueued hot methods skip the profiler's "
      "rediscovery window, which is the time-to-peak benefit the "
      "repository exists to buy.\n");
  printRunnerSummary(RunnerMetrics);
  return 0;
}
