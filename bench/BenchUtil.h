//===- bench/BenchUtil.h - shared bench helpers ------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries. Every
/// binary prints the paper artifact it regenerates, the configuration,
/// and a rendered table; CBSVM_RUNS controls the median-of-N repetition
/// count (the paper uses 10; the default here is 3 to keep the full
/// bench sweep interactive).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BENCH_BENCHUTIL_H
#define CBSVM_BENCH_BENCHUTIL_H

#include "experiments/Experiments.h"
#include "profiling/OverlapMetric.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <string>

namespace cbs::bench {

inline void printHeader(const char *Artifact, const char *Description) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s — %s\n", Artifact, Description);
  std::printf("Arnold & Grove, \"Collecting and Exploiting High-Accuracy "
              "Call Graph\nProfiles in Virtual Machines\" (CGO 2005) — CBSVM "
              "reproduction\n");
  std::printf("==============================================================="
              "=\n\n");
}

/// "overhead/accuracy" cell in the Table 2 style.
inline std::string cell(const exp::AccuracyCell &C) {
  return TablePrinter::formatDouble(C.OverheadPct, 1) + "/" +
         TablePrinter::formatDouble(C.AccuracyPct, 0);
}

inline const char *personalityName(vm::Personality Pers) {
  return Pers == vm::Personality::JikesRVM ? "Jikes RVM" : "J9";
}

} // namespace cbs::bench

#endif // CBSVM_BENCH_BENCHUTIL_H
