//===- bench/BenchUtil.h - shared bench helpers ------------------*- C++ -*-===//
//
// Part of the CBSVM project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries. Every
/// binary prints the paper artifact it regenerates, the configuration,
/// and a rendered table; CBSVM_RUNS controls the median-of-N repetition
/// count (the paper uses 10; the default here is 3 to keep the full
/// bench sweep interactive).
///
//===----------------------------------------------------------------------===//

#ifndef CBSVM_BENCH_BENCHUTIL_H
#define CBSVM_BENCH_BENCHUTIL_H

#include "experiments/Experiments.h"
#include "experiments/ParallelRunner.h"
#include "profiling/OverlapMetric.h"
#include "support/ArgParser.h"
#include "support/Json.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace cbs::bench {

/// Resolves the worker count for a bench binary: `--jobs N` on the
/// command line wins, then the CBSVM_JOBS environment variable, then
/// hardware concurrency. `--jobs 1` is the serial path; any other value
/// produces byte-identical tables and JSON (see ParallelRunner.h).
inline unsigned jobsFromArgs(support::ArgParser &Args) {
  return exp::resolveJobs(
      static_cast<unsigned>(Args.optionUInt("--jobs", 0, 1, 1024)));
}

/// Seed for bench binaries that accept one; uniform across the suite.
inline uint64_t seedFromArgs(support::ArgParser &Args,
                             uint64_t Default = 1) {
  return Args.optionUInt("--seed", Default, 1, UINT64_MAX);
}

/// Prints the engine's `runner.*` accounting to stderr (stderr so that
/// stdout and `--json` output stay byte-identical across job counts —
/// wall-clock numbers are inherently nondeterministic).
inline void printRunnerSummary(const tel::MetricRegistry &R) {
  const tel::Counter *Tasks = R.findCounter("runner.tasks");
  const tel::Counter *Wall = R.findCounter("runner.wall_us");
  const tel::Counter *Busy = R.findCounter("runner.busy_us");
  const tel::Gauge *Jobs = R.findGauge("runner.jobs");
  const tel::Gauge *Speedup = R.findGauge("runner.speedup_x100");
  if (!Tasks || !Wall || !Busy || !Jobs || !Speedup)
    return;
  std::fprintf(stderr,
               "runner: jobs=%llu tasks=%llu wall=%.2fs busy=%.2fs "
               "speedup=%.2fx\n",
               static_cast<unsigned long long>(Jobs->Value),
               static_cast<unsigned long long>(Tasks->Value),
               static_cast<double>(Wall->Value) / 1e6,
               static_cast<double>(Busy->Value) / 1e6,
               static_cast<double>(Speedup->Value) / 100.0);
}

inline void printHeader(const char *Artifact, const char *Description) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s — %s\n", Artifact, Description);
  std::printf("Arnold & Grove, \"Collecting and Exploiting High-Accuracy "
              "Call Graph\nProfiles in Virtual Machines\" (CGO 2005) — CBSVM "
              "reproduction\n");
  std::printf("==============================================================="
              "=\n\n");
}

/// "overhead/accuracy" cell in the Table 2 style.
inline std::string cell(const exp::AccuracyCell &C) {
  return TablePrinter::formatDouble(C.OverheadPct, 1) + "/" +
         TablePrinter::formatDouble(C.AccuracyPct, 0);
}

inline const char *personalityName(vm::Personality Pers) {
  return Pers == vm::Personality::JikesRVM ? "Jikes RVM" : "J9";
}

/// Machine-readable mirror of a bench binary's printed tables. The
/// binary feeds it the same cells it hands to TablePrinter; when the
/// command line carries `--json FILE`, the destructor writes
///
///   {"artifact": ..., "tables": [{"name", "columns", "rows"}...],
///    "meta": {...}}
///
/// to FILE ("-" for stdout). Cells that lex fully as numbers are
/// emitted as JSON numbers, everything else as strings. Without
/// `--json` every call is a no-op, so the mirroring costs nothing in
/// the normal text mode.
class BenchReport {
public:
  BenchReport(support::ArgParser &Args, std::string Artifact)
      : Artifact(std::move(Artifact)), Path(Args.option("--json", "")) {}

  ~BenchReport() {
    if (Path.empty())
      return;
    std::string Doc = render();
    if (Path == "-") {
      std::fputs(Doc.c_str(), stdout);
      std::fputc('\n', stdout);
      return;
    }
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", Path.c_str());
      return;
    }
    Out << Doc;
  }

  bool enabled() const { return !Path.empty(); }

  void beginTable(std::string Name, std::vector<std::string> Columns) {
    if (!enabled())
      return;
    Tables.push_back({std::move(Name), std::move(Columns), {}});
  }

  void addRow(std::vector<std::string> Cells) {
    if (!enabled())
      return;
    Tables.back().Rows.push_back(std::move(Cells));
  }

  void note(std::string Key, std::string Value) {
    if (!enabled())
      return;
    Meta.emplace_back(std::move(Key), std::move(Value));
  }

private:
  /// Numbers pass through as raw JSON; anything else is escaped. The
  /// character whitelist keeps strtod's extras (inf/nan/hex) out of the
  /// raw path — those are not valid JSON numbers.
  static void emitCell(json::JsonWriter &W, const std::string &Cell) {
    bool Numeric = !Cell.empty();
    for (char C : Cell)
      if (!(C >= '0' && C <= '9') && C != '+' && C != '-' && C != '.' &&
          C != 'e' && C != 'E')
        Numeric = false;
    if (Numeric)
      Numeric = json::parseJson(Cell).ok();
    if (Numeric)
      W.raw(Cell);
    else
      W.value(Cell);
  }

  std::string render() const {
    json::JsonWriter W;
    W.beginObject();
    W.key("artifact");
    W.value(Artifact);
    W.key("tables");
    W.beginArray();
    for (const Table &T : Tables) {
      W.beginObject();
      W.key("name");
      W.value(T.Name);
      W.key("columns");
      W.beginArray();
      for (const std::string &C : T.Columns)
        W.value(C);
      W.endArray();
      W.key("rows");
      W.beginArray();
      for (const std::vector<std::string> &Row : T.Rows) {
        W.beginArray();
        for (const std::string &Cell : Row)
          emitCell(W, Cell);
        W.endArray();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    W.key("meta");
    W.beginObject();
    for (const auto &[Key, Value] : Meta) {
      W.key(Key);
      emitCell(W, Value);
    }
    W.endObject();
    W.endObject();
    return W.take();
  }

  struct Table {
    std::string Name;
    std::vector<std::string> Columns;
    std::vector<std::vector<std::string>> Rows;
  };

  std::string Artifact;
  std::string Path;
  std::vector<Table> Tables;
  std::vector<std::pair<std::string, std::string>> Meta;
};

} // namespace cbs::bench

#endif // CBSVM_BENCH_BENCHUTIL_H
