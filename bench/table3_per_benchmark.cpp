//===- bench/table3_per_benchmark.cpp - Table 3 reproduction -------------------===//
//
// Part of the CBSVM project.
//
// Table 3: per-benchmark overhead and accuracy breakdown, small and
// large inputs, for both VM personalities. "Base" is each VM's
// baseline profiler (Jikes RVM: the timer sampler; J9: CBS with
// Stride=1, Samples=1 — §6.2 notes J9 has no timer DCG profiler), and
// "CBS" is the chosen knee configuration (Jikes: Stride=3, Samples=16;
// J9: Stride=7, Samples=16).
//
// Paper landmarks: average small-input accuracy ~26% (base) vs ~55%
// (CBS) on Jikes; large inputs profile better than small; CBS matches
// or beats base nearly everywhere (compress-large being the paper's
// noted exception); overhead stays within noise for all benchmarks.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Table 3");
  unsigned Jobs = jobsFromArgs(Args);
  uint64_t Seed = seedFromArgs(Args);
  Args.finish();
  unsigned Runs = exp::envRuns(3);
  printHeader("Table 3", "Per-benchmark overhead and accuracy breakdown");
  std::printf("runs per cell: %u (CBSVM_RUNS)\n\n", Runs);
  Report.note("runs", std::to_string(Runs));
  tel::MetricRegistry RunnerMetrics;

  for (vm::Personality Pers :
       {vm::Personality::JikesRVM, vm::Personality::J9}) {
    std::printf("--- %s personality ---\n", personalityName(Pers));
    vm::ProfilerOptions Base = exp::baseProfiler(Pers);
    vm::ProfilerOptions CBS = exp::chosenCBS(Pers);
    std::printf("base = %s; cbs = Stride=%u, Samples=%u\n",
                Pers == vm::Personality::JikesRVM ? "timer sampling"
                                                  : "CBS(1,1)",
                CBS.CBS.Stride, CBS.CBS.SamplesPerTick);

    TablePrinter TP;
    std::vector<std::string> Header{"Benchmark", "Base ovh%", "Base acc",
                                    "CBS ovh%", "CBS acc"};
    TP.setHeader(Header);
    Report.beginTable(Pers == vm::Personality::JikesRVM ? "jikes" : "j9",
                      Header);
    for (wl::InputSize Size :
         {wl::InputSize::Small, wl::InputSize::Large}) {
      std::vector<double> BaseAcc, CBSAcc, BaseOvh, CBSOvh;
      // One task per workload; both configurations are measured inside
      // the task (serial inner harness — no nested pools) and rows
      // commit in suite order, keeping the table and the JSON mirror
      // byte-identical to the serial schedule.
      const std::vector<wl::WorkloadInfo> &Suite = wl::suite();
      std::vector<std::pair<exp::AccuracyCell, exp::AccuracyCell>> Cells(
          Suite.size());
      exp::ParallelConfig Par;
      Par.Jobs = Jobs;
      Par.Metrics = &RunnerMetrics;
      exp::ParallelRunner Runner(Par);
      exp::ParallelConfig Serial;
      Serial.Jobs = 1;
      Runner.run(
          Suite.size(),
          [&](exp::ParallelRunner::TaskContext &Ctx) {
            const wl::WorkloadInfo &W = Suite[Ctx.Index];
            Cells[Ctx.Index] = {
                exp::measureAccuracyMedian(W, Size, Pers, Base, Runs, Seed,
                                           Serial),
                exp::measureAccuracyMedian(W, Size, Pers, CBS, Runs, Seed,
                                           Serial)};
          },
          [&](exp::ParallelRunner::TaskContext &Ctx) {
            const wl::WorkloadInfo &W = Suite[Ctx.Index];
            const auto &[BaseCell, CBSCell] = Cells[Ctx.Index];
            std::vector<std::string> Row{
                std::string(W.Name) + "-" + wl::inputSizeName(Size),
                TablePrinter::formatDouble(BaseCell.OverheadPct, 2),
                TablePrinter::formatDouble(BaseCell.AccuracyPct, 0),
                TablePrinter::formatDouble(CBSCell.OverheadPct, 2),
                TablePrinter::formatDouble(CBSCell.AccuracyPct, 0)};
            TP.addRow(Row);
            Report.addRow(Row);
            BaseAcc.push_back(BaseCell.AccuracyPct);
            CBSAcc.push_back(CBSCell.AccuracyPct);
            BaseOvh.push_back(BaseCell.OverheadPct);
            CBSOvh.push_back(CBSCell.OverheadPct);
          });
      std::vector<std::string> AvgRow{
          std::string("Average ") + wl::inputSizeName(Size),
          TablePrinter::formatDouble(mean(BaseOvh), 2),
          TablePrinter::formatDouble(mean(BaseAcc), 0),
          TablePrinter::formatDouble(mean(CBSOvh), 2),
          TablePrinter::formatDouble(mean(CBSAcc), 0)};
      TP.addRow(AvgRow);
      Report.addRow(AvgRow);
      TP.addSeparator();
    }
    std::fputs(TP.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf("paper landmarks (Jikes): small avg 26 (base) vs 55 (cbs); "
              "large avg 50 vs 69;\nJ9: small 27 vs 51, large 46 vs 74; "
              "overhead < ~0.5%% everywhere.\n");
  printRunnerSummary(RunnerMetrics);
  return 0;
}
