//===- bench/micro_quality_monitor.cpp - self-observability cost ---------------===//
//
// Part of the CBSVM project.
//
// Host-time microbenchmarks of the self-observability stack: the
// quality monitor's per-window cost as a function of profile size, the
// per-edge confidence math, the flight recorder's per-event cost, and
// — the acceptance gate — whole-VM interpretation throughput with the
// monitor disarmed vs armed. The disarmed pair must be within noise of
// each other (and of micro_profiler_hotpath's BM_InterpreterWithCBS):
// a VM constructed with Quality.EveryTicks == 0 allocates no monitor
// and the tick path pays one null check.
//
//===----------------------------------------------------------------------===//

#include "profiling/DynamicCallGraph.h"
#include "profiling/QualityMonitor.h"
#include "support/ArgParser.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/MetricRegistry.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cbs;

// One monitor window over a snapshot of Arg(0) edges: the overlap scan,
// the hot-set sort, and the per-edge confidence pass.
static void BM_MonitorWindow(benchmark::State &State) {
  const uint32_t Edges = static_cast<uint32_t>(State.range(0));
  prof::DynamicCallGraph DCG;
  for (uint32_t Site = 0; Site != Edges; ++Site)
    DCG.addSample({Site, Site % 37}, Site % 100 + 1);
  prof::DCGSnapshot Snap = DCG.snapshot();
  tel::MetricRegistry Registry;
  prof::ProfileQualityMonitor Monitor({/*EveryTicks=*/1}, Registry);
  uint64_t Tick = 0;
  for (auto _ : State) {
    ++Tick;
    benchmark::DoNotOptimize(
        Monitor.onWindow(Snap, Tick, Tick * 200'000).OverlapPct);
  }
  State.SetItemsProcessed(State.iterations() * Edges);
}
BENCHMARK(BM_MonitorWindow)->Arg(16)->Arg(256)->Arg(4096);

static void BM_EdgeConfidence(benchmark::State &State) {
  uint64_t W = 1;
  for (auto _ : State) {
    benchmark::DoNotOptimize(prof::ProfileQualityMonitor::edgeConfidencePct(W));
    W = (W + 97) & 8191;
  }
}
BENCHMARK(BM_EdgeConfidence);

static void BM_FlightRecorderEvent(benchmark::State &State) {
  tel::FlightRecorder Recorder;
  uint64_t Cycle = 0;
  for (auto _ : State)
    Recorder.event(tel::TraceEvent::sample(++Cycle, 0, 5, 7));
  benchmark::DoNotOptimize(Recorder.totalEvents());
}
BENCHMARK(BM_FlightRecorderEvent);

static void BM_FlightRecorderWindowNote(benchmark::State &State) {
  tel::FlightRecorder Recorder;
  tel::RecorderWindow W;
  for (auto _ : State) {
    ++W.Index;
    Recorder.noteWindow(W);
  }
  benchmark::DoNotOptimize(Recorder.windows().size());
}
BENCHMARK(BM_FlightRecorderWindowNote);

namespace {

// The BM_InterpreterWithCBS configuration from micro_profiler_hotpath,
// with the monitor armed every EveryTicks ticks (0 = disarmed).
vm::VMConfig cbsConfig(uint32_t MonitorEveryTicks) {
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Profiler.Quality.EveryTicks = MonitorEveryTicks;
  return Config;
}

void runInterpreter(benchmark::State &State, uint32_t MonitorEveryTicks) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VirtualMachine VM(P, cbsConfig(MonitorEveryTicks));
  VM.run(1'000'000); // Warm the code cache.
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}

} // namespace

// The acceptance pair: disarmed must match micro_profiler_hotpath's
// BM_InterpreterWithCBS (same configuration, monitor code compiled in
// but never constructed).
static void BM_InterpreterCBSNoMonitor(benchmark::State &State) {
  runInterpreter(State, /*MonitorEveryTicks=*/0);
}
BENCHMARK(BM_InterpreterCBSNoMonitor);

static void BM_InterpreterCBSWithMonitor(benchmark::State &State) {
  runInterpreter(State, /*MonitorEveryTicks=*/8);
}
BENCHMARK(BM_InterpreterCBSWithMonitor);

int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
