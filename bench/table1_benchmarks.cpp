//===- bench/table1_benchmarks.cpp - Table 1 reproduction ----------------------===//
//
// Part of the CBSVM project.
//
// Table 1: benchmark characteristics — run time, methods executed, and
// executed bytecode size, for small and large inputs. "Time" here is
// modelled cycles (see DESIGN.md: 1 virtual second := the cycle count a
// 2005-class machine retires in a second, ~2.8e9; the paper's absolute
// seconds are not meaningful on a simulator, the relative sizes are).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Table 1");
  Args.finish();
  printHeader("Table 1", "Benchmarks used in this study");

  TablePrinter TP;
  std::vector<std::string> Header{"Benchmark", "Cycles(M) small", "Meth exe",
                                  "Size (K)", "Cycles(M) large", "Meth exe",
                                  "Size (K)"};
  TP.setHeader(Header);
  Report.beginTable("benchmarks", Header);

  for (const wl::WorkloadInfo &W : wl::suite()) {
    std::vector<std::string> Row{W.Name};
    for (wl::InputSize Size : {wl::InputSize::Small, wl::InputSize::Large}) {
      bc::Program P = W.Build(Size, 1);
      exp::PerfectProfile PP =
          exp::runPerfect(P, vm::Personality::JikesRVM, 1);
      // "Size (K)": total bytecode bytes; all generated methods are
      // executed, so program size equals executed size.
      uint64_t ExecutedBytes = P.totalSizeBytes();
      Row.push_back(TablePrinter::formatDouble(PP.BaseCycles / 1e6, 1));
      Row.push_back(std::to_string(PP.MethodsExecuted));
      Row.push_back(TablePrinter::formatDouble(ExecutedBytes / 1024.0, 0));
    }
    TP.addRow(Row);
    Report.addRow(Row);
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\nPaper reference (small input): compress 243 methods/22K, "
              "jess 662/42K,\njavac 939/86K, daikon 1671/140K, kawa "
              "1794/96K, soot 1215/111K.\n");
  return 0;
}
