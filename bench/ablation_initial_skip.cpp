//===- bench/ablation_initial_skip.cpp - §4 initial-skip ablation --------------===//
//
// Part of the CBSVM project.
//
// §4: "To ensure that all calls in the profiling window have an equal
// chance of being profiled, the timer mechanism can select the initial
// value of skippedInvocations from the interval [1..STRIDE] via either
// a pseudo-random number generator or a round-robin approach."
//
// This ablation compares Fixed / RoundRobin / Random initial skips on
// (a) the adversarial program whose call bursts align with the window
// geometry, and (b) the regular benchmark suite (where the choice
// barely matters — the paper's reason for not belaboring it).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"

using namespace cbs;
using namespace cbs::bench;

namespace {

double adversaryDecoyError(prof::SkipPolicy Skip, uint32_t Stride,
                           uint32_t Samples) {
  bc::Program P =
      wl::buildAdversary(Stride * Samples + 1, 150'000);
  vm::VMConfig Config =
      exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = Stride;
  Config.Profiler.CBS.SamplesPerTick = Samples;
  Config.Profiler.CBS.Skip = Skip;
  // Keep the timer strictly periodic: the adversary attacks exactly
  // this determinism.
  Config.TimerJitterPct = 0;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  prof::DCGSnapshot DCG = VM.profile();
  uint64_t Decoy = 0;
  DCG.forEachEdge([&](prof::CallEdge E, uint64_t W) {
    if (P.qualifiedName(E.Callee) == "decoy")
      Decoy += W;
  });
  double TrueShare = 1.0 / (Stride * Samples + 1);
  double Observed = DCG.totalWeight() == 0
                        ? 0.0
                        : static_cast<double>(Decoy) / DCG.totalWeight();
  return 100.0 * std::abs(Observed - TrueShare) / TrueShare;
}

const char *skipName(prof::SkipPolicy Skip) {
  switch (Skip) {
  case prof::SkipPolicy::Fixed:
    return "fixed";
  case prof::SkipPolicy::RoundRobin:
    return "round-robin";
  case prof::SkipPolicy::Random:
    return "random";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  printHeader("Ablation: initial skip policy",
              "pseudo-random vs round-robin vs fixed (§4)");

  {
    std::printf("--- adversarial program (burst aligned to the window; "
                "strictly periodic timer) ---\n");
    TablePrinter TP;
    TP.setHeader({"Stride/Samples", "fixed err%", "round-robin err%",
                  "random err%"});
    for (auto [Stride, Samples] :
         {std::pair{4u, 2u}, std::pair{3u, 4u}, std::pair{7u, 2u}}) {
      TP.addRow({std::to_string(Stride) + "/" + std::to_string(Samples),
                 TablePrinter::formatDouble(
                     adversaryDecoyError(prof::SkipPolicy::Fixed, Stride,
                                         Samples),
                     0),
                 TablePrinter::formatDouble(
                     adversaryDecoyError(prof::SkipPolicy::RoundRobin,
                                         Stride, Samples),
                     0),
                 TablePrinter::formatDouble(
                     adversaryDecoyError(prof::SkipPolicy::Random, Stride,
                                         Samples),
                     0)});
    }
    std::fputs(TP.render().c_str(), stdout);
    std::printf("err%% = relative error of the decoy call's observed "
                "profile share vs ground truth\n\n");
  }

  {
    std::printf("--- benchmark suite (small inputs): accuracy is "
                "insensitive to the policy ---\n");
    TablePrinter TP;
    TP.setHeader({"Policy", "avg accuracy"});
    for (prof::SkipPolicy Skip :
         {prof::SkipPolicy::Fixed, prof::SkipPolicy::RoundRobin,
          prof::SkipPolicy::Random}) {
      std::vector<double> Acc;
      for (const wl::WorkloadInfo &W : wl::suite()) {
        bc::Program P = W.Build(wl::InputSize::Small, 1);
        exp::PerfectProfile Perfect =
            exp::runPerfect(P, vm::Personality::JikesRVM, 1);
        vm::ProfilerOptions Prof = exp::chosenCBS(vm::Personality::JikesRVM);
        Prof.CBS.Skip = Skip;
        Acc.push_back(exp::measureAccuracy(P, vm::Personality::JikesRVM,
                                           Prof, Perfect, 1)
                          .AccuracyPct);
      }
      TP.addRow({skipName(Skip), TablePrinter::formatDouble(mean(Acc), 1)});
    }
    std::fputs(TP.render().c_str(), stdout);
  }
  return 0;
}
