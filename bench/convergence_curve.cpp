//===- bench/convergence_curve.cpp - profile convergence over time -------------===//
//
// Part of the CBSVM project.
//
// §2's second constraint: "the accuracy of the DCG should rapidly
// converge to facilitate its use by online optimizations." This bench
// plots accuracy as a function of elapsed virtual time for the three
// online profilers — the reason CBS's *rate* matters is that the
// adaptive system consumes the profile at recompilation time, early in
// the run, not at the end. Code patching is handicapped exactly as the
// paper describes: it cannot see anything before methods reach their
// promotion threshold.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "profiling/ProfilerRegistry.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Convergence");
  uint64_t Seed = seedFromArgs(Args);
  Args.finish();
  printHeader("Convergence", "accuracy vs elapsed virtual time (jess-large)");

  const wl::WorkloadInfo &W = *wl::findWorkload("jess");
  bc::Program P = W.Build(wl::InputSize::Large, Seed);
  exp::PerfectProfile Perfect =
      exp::runPerfect(P, vm::Personality::JikesRVM, Seed);

  struct Curve {
    const char *Name;
    vm::ProfilerOptions Prof;
  };
  std::vector<Curve> Curves = {
      {"timer", {}},
      {"cbs(3,16)", exp::chosenCBS(vm::Personality::JikesRVM)},
      {"patching", {}},
  };
  const prof::ProfilerRegistry &Registry = prof::ProfilerRegistry::instance();
  Registry.configure("timer", Curves[0].Prof);
  Registry.configure("patching", Curves[2].Prof);
  Curves[2].Prof.PromoteAfterInvocations = 1000;

  std::vector<uint64_t> Checkpoints = {2'000'000,  5'000'000, 10'000'000,
                                       20'000'000, 40'000'000};

  TablePrinter TP;
  std::vector<std::string> Header{"Profiler"};
  for (uint64_t C : Checkpoints)
    Header.push_back(std::to_string(C / 1'000'000) + "Mcyc");
  TP.setHeader(Header);
  Report.beginTable("accuracy_pct", Header);

  for (const Curve &C : Curves) {
    vm::VMConfig Config =
        exp::jitOnlyConfig(P, vm::Personality::JikesRVM, Seed);
    Config.Profiler = C.Prof;
    vm::VirtualMachine VM(P, Config);
    std::vector<std::string> Row{C.Name};
    for (uint64_t Checkpoint : Checkpoints) {
      while (VM.state() == vm::RunState::Running &&
             VM.cycles() < Checkpoint)
        VM.run(Checkpoint - VM.cycles());
      Row.push_back(TablePrinter::formatDouble(
          prof::accuracy(VM.profile(), Perfect.DCG), 0));
    }
    TP.addRow(Row);
    Report.addRow(Row);
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\nCBS converges within the first few Mcycles — while the "
              "adaptive system is\nstill making its inlining decisions; "
              "the timer profile is still catching up\nat the end of the "
              "run.\n");
  return 0;
}
