//===- bench/metrics_comparison.cpp - what "accuracy" means per client -----------===//
//
// Part of the CBSVM project.
//
// §6.2: "the magnitude of difference in overlap that should be
// considered significant is client-dependent." This bench scores the
// timer and CBS profiles under four metrics that correspond to four
// clients:
//
//   overlap        — the paper's metric: weight-faithfulness overall;
//   >1% coverage   — "did you find every edge above 1%% of the total
//                    weight?": the old Jikes inliner's is-it-hot
//                    question. Timer profiles do respectably here,
//                    which is why the old conservative inliner couldn't
//                    benefit much from better profiles (§5.1);
//   hot order      — ranking agreement among the top-20: what a budget
//                    allocator needs;
//   site L1 error  — per-site receiver distribution error: what the 40%
//                    guarded-inlining rule consumes (lower is better).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "profiling/Metrics.h"
#include "profiling/ProfilerRegistry.h"
#include "support/Statistics.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  printHeader("Metrics comparison",
              "accuracy is client-dependent (§6.2 / §5.1)");

  TablePrinter TP;
  TP.setHeader({"Benchmark", "profiler", "overlap", ">1% cover",
                "top20 order", "site L1 err"});

  std::vector<double> TimerCover, TimerOverlap;
  for (const wl::WorkloadInfo &W : wl::suite()) {
    bc::Program P = W.Build(wl::InputSize::Small, 1);
    exp::PerfectProfile Perfect =
        exp::runPerfect(P, vm::Personality::JikesRVM, 1);

    for (bool UseCBS : {false, true}) {
      vm::VMConfig Config =
          exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
      if (UseCBS)
        Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
      else
        prof::ProfilerRegistry::instance().configure("timer",
                                                     Config.Profiler);
      vm::VirtualMachine VM(P, Config);
      VM.run();
      prof::DCGSnapshot DCG = VM.profile();
      // The old inliner's hot set: edges above 1% of total weight.
      size_t NumHot = 0;
      Perfect.DCG.forEachEdge([&](prof::CallEdge E, uint64_t W) {
        if (Perfect.DCG.fraction(E) > 0.01)
          ++NumHot;
      });
      double Overlap = prof::overlap(DCG, Perfect.DCG);
      double Cover =
          100 * prof::hotEdgeCoverage(DCG, Perfect.DCG, NumHot);
      double Order = 100 * prof::hotOrderAgreement(DCG, Perfect.DCG, 20);
      double SiteErr = prof::siteDistributionError(DCG, Perfect.DCG);
      TP.addRow({std::string(W.Name), UseCBS ? "cbs" : "timer",
                 TablePrinter::formatDouble(Overlap, 0),
                 TablePrinter::formatDouble(Cover, 0),
                 TablePrinter::formatDouble(Order, 0),
                 TablePrinter::formatDouble(SiteErr, 2)});
      if (!UseCBS) {
        TimerCover.push_back(Cover);
        TimerOverlap.push_back(Overlap);
      }
    }
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\ntimer averages: overlap %.0f, but coverage of the >1%%-"
              "weight edges is %.0f —\nthe only question the old Jikes "
              "inliner asked. A conservative is-it-hot client\nsees "
              "little wrong with a timer profile (why better profiles "
              "did not help it,\n§5.1); clients consuming weights, "
              "rankings, and per-site distributions (the\nnew inliner) "
              "see the gap.\n",
              mean(TimerOverlap), mean(TimerCover));
  return 0;
}
