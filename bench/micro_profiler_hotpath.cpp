//===- bench/micro_profiler_hotpath.cpp - host-time microbenchmarks ------------===//
//
// Part of the CBSVM project.
//
// Google-benchmark microbenchmarks of the profiler hot paths as *host*
// code: the Figure 3 countdown, the DCG update, the stack walk, and
// whole-VM interpretation throughput. These measure the reproduction's
// own implementation cost (not modelled cycles) — useful when tuning
// the simulator, and a sanity check that the disarmed fast path really
// is a single compare.
//
//===----------------------------------------------------------------------===//

#include "profiling/CounterBasedSampler.h"
#include "profiling/DynamicCallGraph.h"
#include "profiling/OverlapMetric.h"
#include "profiling/SampleBuffer.h"
#include "support/ArgParser.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"
#include "vm/StackWalker.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cbs;

static void BM_CBSArmedEvent(benchmark::State &State) {
  prof::CBSParams Params;
  Params.Stride = 3;
  Params.SamplesPerTick = 1u << 30; // Never disarm.
  prof::CounterBasedSampler CBS(Params);
  RandomEngine RNG(1);
  CBS.onTimerTick(RNG);
  for (auto _ : State)
    benchmark::DoNotOptimize(CBS.onInvocationEvent());
}
BENCHMARK(BM_CBSArmedEvent);

static void BM_CBSWindowCycle(benchmark::State &State) {
  prof::CBSParams Params;
  Params.Stride = static_cast<uint32_t>(State.range(0));
  Params.SamplesPerTick = 16;
  prof::CounterBasedSampler CBS(Params);
  RandomEngine RNG(1);
  for (auto _ : State) {
    CBS.onTimerTick(RNG);
    while (CBS.armed())
      benchmark::DoNotOptimize(CBS.onInvocationEvent());
  }
}
BENCHMARK(BM_CBSWindowCycle)->Arg(1)->Arg(3)->Arg(7)->Arg(31);

static void BM_DCGAddSample(benchmark::State &State) {
  prof::DynamicCallGraph DCG;
  uint32_t Site = 0;
  for (auto _ : State) {
    DCG.addSample({Site, Site % 37});
    Site = (Site + 1) & 1023;
  }
  benchmark::DoNotOptimize(DCG.totalWeight());
}
BENCHMARK(BM_DCGAddSample);

// Sharded variant: Arg is the shard count. Arg(1) should match
// BM_DCGAddSample (the single-shard fast path is the same code).
static void BM_DCGAddSampleSharded(benchmark::State &State) {
  prof::DynamicCallGraph DCG(static_cast<unsigned>(State.range(0)));
  uint32_t Site = 0;
  for (auto _ : State) {
    DCG.addSample({Site, Site % 37});
    Site = (Site + 1) & 1023;
  }
  benchmark::DoNotOptimize(DCG.totalWeight());
}
BENCHMARK(BM_DCGAddSampleSharded)->Arg(1)->Arg(8)->Arg(64);

// The VM's actual recording path: append into the per-thread
// SampleBuffer, flush a whole batch when it fills (one lock acquisition
// per 256 samples instead of per sample).
static void BM_DCGBufferedRecording(benchmark::State &State) {
  prof::DynamicCallGraph DCG(static_cast<unsigned>(State.range(0)));
  prof::SampleBuffer Buffer(256);
  uint32_t Site = 0;
  for (auto _ : State) {
    if (Buffer.append({Site, Site % 37}))
      Buffer.flushInto(DCG);
    Site = (Site + 1) & 1023;
  }
  Buffer.flushInto(DCG);
  benchmark::DoNotOptimize(DCG.totalWeight());
}
BENCHMARK(BM_DCGBufferedRecording)->Arg(1)->Arg(8);

// Concurrent producers: each benchmark thread owns a SampleBuffer and
// batch-flushes into one shared 8-shard repository. Single-core
// containers still exercise the interleaving; on multi-core hosts the
// shards keep writers out of each other's way.
static void BM_DCGConcurrentFlush(benchmark::State &State) {
  static prof::DynamicCallGraph Repo(8);
  prof::SampleBuffer Buffer(256);
  uint32_t Site = static_cast<uint32_t>(State.thread_index()) << 12;
  for (auto _ : State) {
    if (Buffer.append({Site, Site % 37}))
      Buffer.flushInto(Repo);
    Site = (Site & ~uint32_t(1023)) | ((Site + 1) & 1023);
  }
  Buffer.flushInto(Repo);
  benchmark::DoNotOptimize(Repo.totalWeight());
}
BENCHMARK(BM_DCGConcurrentFlush)->Threads(1)->Threads(4)->Threads(8);

// Snapshot materialization after a mutation (the epoch cache misses
// every iteration: sort + copy of 1024 edges).
static void BM_DCGSnapshotRebuild(benchmark::State &State) {
  prof::DynamicCallGraph DCG;
  for (uint32_t Site = 0; Site != 1024; ++Site)
    DCG.addSample({Site, Site % 37});
  for (auto _ : State) {
    DCG.addSample({0, 0}); // bump the epoch
    benchmark::DoNotOptimize(DCG.snapshot().totalWeight());
  }
}
BENCHMARK(BM_DCGSnapshotRebuild);

// Epoch-cached snapshot: no mutation between calls, so snapshot() is a
// shared_ptr copy under the shard locks.
static void BM_DCGSnapshotCached(benchmark::State &State) {
  prof::DynamicCallGraph DCG;
  for (uint32_t Site = 0; Site != 1024; ++Site)
    DCG.addSample({Site, Site % 37});
  for (auto _ : State)
    benchmark::DoNotOptimize(DCG.snapshot().totalWeight());
}
BENCHMARK(BM_DCGSnapshotCached);

static void BM_OverlapMetric(benchmark::State &State) {
  RandomEngine RNG(7);
  prof::DynamicCallGraph A, B;
  for (int I = 0; I != 1000; ++I) {
    prof::CallEdge E{static_cast<uint32_t>(RNG.nextBelow(512)),
                     static_cast<uint32_t>(RNG.nextBelow(64))};
    A.addSample(E, RNG.nextBelow(100) + 1);
    if (RNG.nextBool(0.7))
      B.addSample(E, RNG.nextBelow(100) + 1);
  }
  prof::DCGSnapshot SA = A.snapshot(), SB = B.snapshot();
  for (auto _ : State)
    benchmark::DoNotOptimize(prof::overlap(SA, SB));
}
BENCHMARK(BM_OverlapMetric);

static void BM_InterpreterThroughput(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  VM.run(1'000'000); // Warm the code cache.
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}
BENCHMARK(BM_InterpreterThroughput);

static void BM_InterpreterWithCBS(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  vm::VirtualMachine VM(P, Config);
  VM.run(1'000'000);
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}
BENCHMARK(BM_InterpreterWithCBS);

// BM_InterpreterWithCBS vs this: the cost of an installed trace sink.
// Compare BM_InterpreterWithCBS against BM_InterpreterThroughput for
// the no-sink case — the telemetry rework must keep them identical
// (the only added work is one null check on already-slow paths).
static void BM_InterpreterWithRingSink(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  tel::RingBufferSink Sink;
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Trace = &Sink;
  vm::VirtualMachine VM(P, Config);
  VM.run(1'000'000);
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}
BENCHMARK(BM_InterpreterWithRingSink);

static void BM_CounterIncrement(benchmark::State &State) {
  tel::MetricRegistry Registry;
  tel::Counter &C = Registry.counter("bench.counter");
  for (auto _ : State)
    benchmark::DoNotOptimize(++C);
}
BENCHMARK(BM_CounterIncrement);

static void BM_HistogramRecord(benchmark::State &State) {
  tel::MetricRegistry Registry;
  tel::Histogram &H = Registry.histogram("bench.histogram");
  uint64_t V = 0;
  for (auto _ : State) {
    H.record(V);
    V = (V + 97) & 8191;
  }
  benchmark::DoNotOptimize(H.count());
}
BENCHMARK(BM_HistogramRecord);

static void BM_RingSinkEvent(benchmark::State &State) {
  tel::RingBufferSink Sink;
  uint64_t Cycle = 0;
  for (auto _ : State)
    Sink.event(tel::TraceEvent::sample(++Cycle, 0, 5, 7));
  benchmark::DoNotOptimize(Sink.totalEvents());
}
BENCHMARK(BM_RingSinkEvent);

// benchmark::Initialize consumes the flags it understands and compacts
// argv; anything left over is strict-rejected like every other binary.
int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
