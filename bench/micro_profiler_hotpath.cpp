//===- bench/micro_profiler_hotpath.cpp - host-time microbenchmarks ------------===//
//
// Part of the CBSVM project.
//
// Google-benchmark microbenchmarks of the profiler hot paths as *host*
// code: the Figure 3 countdown, the DCG update, the stack walk, and
// whole-VM interpretation throughput. These measure the reproduction's
// own implementation cost (not modelled cycles) — useful when tuning
// the simulator, and a sanity check that the disarmed fast path really
// is a single compare.
//
//===----------------------------------------------------------------------===//

#include "profiling/CounterBasedSampler.h"
#include "profiling/DynamicCallGraph.h"
#include "profiling/OverlapMetric.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"
#include "vm/StackWalker.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cbs;

static void BM_CBSArmedEvent(benchmark::State &State) {
  prof::CBSParams Params;
  Params.Stride = 3;
  Params.SamplesPerTick = 1u << 30; // Never disarm.
  prof::CounterBasedSampler CBS(Params);
  RandomEngine RNG(1);
  CBS.onTimerTick(RNG);
  for (auto _ : State)
    benchmark::DoNotOptimize(CBS.onInvocationEvent());
}
BENCHMARK(BM_CBSArmedEvent);

static void BM_CBSWindowCycle(benchmark::State &State) {
  prof::CBSParams Params;
  Params.Stride = static_cast<uint32_t>(State.range(0));
  Params.SamplesPerTick = 16;
  prof::CounterBasedSampler CBS(Params);
  RandomEngine RNG(1);
  for (auto _ : State) {
    CBS.onTimerTick(RNG);
    while (CBS.armed())
      benchmark::DoNotOptimize(CBS.onInvocationEvent());
  }
}
BENCHMARK(BM_CBSWindowCycle)->Arg(1)->Arg(3)->Arg(7)->Arg(31);

static void BM_DCGAddSample(benchmark::State &State) {
  prof::DynamicCallGraph DCG;
  uint32_t Site = 0;
  for (auto _ : State) {
    DCG.addSample({Site, Site % 37});
    Site = (Site + 1) & 1023;
  }
  benchmark::DoNotOptimize(DCG.totalWeight());
}
BENCHMARK(BM_DCGAddSample);

static void BM_OverlapMetric(benchmark::State &State) {
  RandomEngine RNG(7);
  prof::DynamicCallGraph A, B;
  for (int I = 0; I != 1000; ++I) {
    prof::CallEdge E{static_cast<uint32_t>(RNG.nextBelow(512)),
                     static_cast<uint32_t>(RNG.nextBelow(64))};
    A.addSample(E, RNG.nextBelow(100) + 1);
    if (RNG.nextBool(0.7))
      B.addSample(E, RNG.nextBelow(100) + 1);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(prof::overlap(A, B));
}
BENCHMARK(BM_OverlapMetric);

static void BM_InterpreterThroughput(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VMConfig Config;
  vm::VirtualMachine VM(P, Config);
  VM.run(1'000'000); // Warm the code cache.
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}
BENCHMARK(BM_InterpreterThroughput);

static void BM_InterpreterWithCBS(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  vm::VirtualMachine VM(P, Config);
  VM.run(1'000'000);
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}
BENCHMARK(BM_InterpreterWithCBS);

// BM_InterpreterWithCBS vs this: the cost of an installed trace sink.
// Compare BM_InterpreterWithCBS against BM_InterpreterThroughput for
// the no-sink case — the telemetry rework must keep them identical
// (the only added work is one null check on already-slow paths).
static void BM_InterpreterWithRingSink(benchmark::State &State) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  tel::RingBufferSink Sink;
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  Config.Trace = &Sink;
  vm::VirtualMachine VM(P, Config);
  VM.run(1'000'000);
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}
BENCHMARK(BM_InterpreterWithRingSink);

static void BM_CounterIncrement(benchmark::State &State) {
  tel::MetricRegistry Registry;
  tel::Counter &C = Registry.counter("bench.counter");
  for (auto _ : State)
    benchmark::DoNotOptimize(++C);
}
BENCHMARK(BM_CounterIncrement);

static void BM_HistogramRecord(benchmark::State &State) {
  tel::MetricRegistry Registry;
  tel::Histogram &H = Registry.histogram("bench.histogram");
  uint64_t V = 0;
  for (auto _ : State) {
    H.record(V);
    V = (V + 97) & 8191;
  }
  benchmark::DoNotOptimize(H.count());
}
BENCHMARK(BM_HistogramRecord);

static void BM_RingSinkEvent(benchmark::State &State) {
  tel::RingBufferSink Sink;
  uint64_t Cycle = 0;
  for (auto _ : State)
    Sink.event(tel::TraceEvent::sample(++Cycle, 0, 5, 7));
  benchmark::DoNotOptimize(Sink.totalEvents());
}
BENCHMARK(BM_RingSinkEvent);

BENCHMARK_MAIN();
