//===- bench/ablation_entry_check.cpp - §4 entry-check ablation ----------------===//
//
// Part of the CBSVM project.
//
// §4 implementation options: in most VMs the CBS check can overload an
// existing method-entry test, costing nothing while disarmed. A VM
// without any entry test would pay ~3 executed instructions per method
// entry. This ablation measures that difference — the overhead of the
// *check itself*, independent of sampling.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  printHeader("Ablation: overloaded vs explicit entry check",
              "the zero-overhead-when-disarmed claim (§4)");

  TablePrinter TP;
  TP.setHeader({"Benchmark", "overloaded ovh%", "explicit-check ovh%"});
  std::vector<double> Overloaded, Explicit;

  for (const wl::WorkloadInfo &W : wl::suite()) {
    bc::Program P = W.Build(wl::InputSize::Small, 1);
    exp::PerfectProfile Perfect =
        exp::runPerfect(P, vm::Personality::J9, 1);

    auto Measure = [&](bool ExplicitCheck) {
      vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::J9, 1);
      Config.Profiler = exp::chosenCBS(vm::Personality::J9);
      Config.ExplicitEntryCheck = ExplicitCheck;
      vm::VirtualMachine VM(P, Config);
      VM.run();
      return 100.0 *
             (static_cast<double>(VM.stats().Cycles) -
              static_cast<double>(Perfect.BaseCycles)) /
             static_cast<double>(Perfect.BaseCycles);
    };

    double O = Measure(false), E = Measure(true);
    Overloaded.push_back(O);
    Explicit.push_back(E);
    TP.addRow({W.Name, TablePrinter::formatDouble(O, 2),
               TablePrinter::formatDouble(E, 2)});
  }
  TP.addSeparator();
  TP.addRow({"Average", TablePrinter::formatDouble(mean(Overloaded), 2),
             TablePrinter::formatDouble(mean(Explicit), 2)});
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\nThe explicit 3-instruction check costs real overhead on "
              "call-dense programs;\nthe overloaded flag keeps the "
              "disarmed path free — the paper's argument for\nwhy CBS "
              "drops into most VMs at essentially zero cost.\n");
  return 0;
}
