//===- bench/micro_deopt.cpp - deoptimization path cost -------------------------===//
//
// Part of the CBSVM project.
//
// Host-time microbenchmarks of the deoptimization machinery: the code
// cache's invalidate/reinstall round trip (the bookkeeping a deopt pays
// on the VM thread), and whole-VM throughput with guard policing off,
// on, and under the forced-invalidation storm. The off/on pair bounds
// the cost of arming the subsystem on a stable workload (it should be
// near zero: policing is a per-tick scan of tracked versions); the
// storm row is the worst case, recompiling at every yieldpoint.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "bytecode/Builder.h"
#include "opt/InlineOracle.h"
#include "support/ArgParser.h"
#include "vm/CodeCache.h"
#include "vm/VirtualMachine.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cbs;

namespace {

bc::Program tinyProgram() {
  bc::ProgramBuilder PB;
  bc::MethodId A = PB.declareStatic("leaf", {}, /*HasResult=*/true);
  {
    bc::MethodBuilder MB = PB.defineMethod(A);
    MB.work(10).iconst(1).iret();
    MB.finish();
  }
  bc::MethodId Main = PB.declareStatic("main");
  {
    bc::MethodBuilder MB = PB.defineMethod(Main);
    MB.invokeStatic(A).print();
    MB.finish();
  }
  return PB.finish(Main);
}

} // namespace

// Install + invalidate: the cache-side cost of one deoptimization
// (retire to graveyard, bump the method's epoch, accounting). The
// fresh cache per iteration bounds graveyard growth; its construction
// is constant background cost in every iteration.
static void BM_CacheInstallInvalidate(benchmark::State &State) {
  bc::Program P = tinyProgram();
  vm::CostModel Costs;
  for (auto _ : State) {
    vm::CodeCache Cache(P);
    Cache.install(vm::CodeCache::compileBaseline(P, 0, 1, Costs));
    benchmark::DoNotOptimize(Cache.invalidate(0));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheInstallInvalidate);

// The full deopt round trip: invalidate, then recompile and reinstall
// the replacement (what the repair request pays at its install point).
static void BM_CacheDeoptRoundTrip(benchmark::State &State) {
  bc::Program P = tinyProgram();
  vm::CostModel Costs;
  for (auto _ : State) {
    vm::CodeCache Cache(P);
    Cache.install(vm::CodeCache::compileBaseline(P, 0, 1, Costs));
    Cache.invalidate(0);
    benchmark::DoNotOptimize(
        Cache.install(vm::CodeCache::compileBaseline(P, 0, 1, Costs)));
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CacheDeoptRoundTrip);

namespace {

// Whole-VM host throughput with the adaptive system attached and the
// requested deopt configuration.
void runWithDeopt(benchmark::State &State, bool Enabled, bool Storm) {
  bc::Program P = wl::buildJess(wl::InputSize::Steady, 1);
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  static opt::NewJikesOracle Oracle;
  aos::AOSConfig AC;
  AC.Deopt.Enabled = Enabled;
  AC.Deopt.ForceStormForTesting = Storm;
  aos::AdaptiveSystem AOS(&Oracle, AC);
  vm::VirtualMachine VM(P, Config);
  VM.setClient(&AOS);
  VM.run(1'000'000); // Warm the code cache.
  for (auto _ : State) {
    uint64_t Before = VM.stats().Instructions;
    VM.run(1'000'000);
    benchmark::DoNotOptimize(VM.stats().Instructions - Before);
  }
  State.SetItemsProcessed(State.iterations() * 1'000'000);
}

} // namespace

static void BM_VMDeoptOff(benchmark::State &State) {
  runWithDeopt(State, /*Enabled=*/false, /*Storm=*/false);
}
BENCHMARK(BM_VMDeoptOff);

static void BM_VMDeoptPolicing(benchmark::State &State) {
  runWithDeopt(State, /*Enabled=*/true, /*Storm=*/false);
}
BENCHMARK(BM_VMDeoptPolicing);

static void BM_VMDeoptStorm(benchmark::State &State) {
  runWithDeopt(State, /*Enabled=*/true, /*Storm=*/true);
}
BENCHMARK(BM_VMDeoptStorm);

int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
