//===- bench/ablation_exhaustive.cpp - §3.1 exhaustive-counter ablation --------===//
//
// Part of the CBSVM project.
//
// §3.1: Vortex instrumented polymorphic inline caches with counters to
// collect edge weights exhaustively — and paid 15-50% overhead for it.
// This ablation reproduces that tradeoff: perfect accuracy at
// per-call-counter cost, vs CBS's ~0.3% for most of the accuracy.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  printHeader("Ablation: exhaustive per-call counters vs CBS",
              "the Vortex 15-50% overhead tradeoff (§3.1)");

  TablePrinter TP;
  TP.setHeader({"Benchmark", "exhaustive ovh%", "exhaustive acc",
                "cbs ovh%", "cbs acc"});
  std::vector<double> ExOvh, CBSOvh, CBSAcc;

  for (const wl::WorkloadInfo &W : wl::suite()) {
    bc::Program P = W.Build(wl::InputSize::Small, 1);
    exp::PerfectProfile Perfect =
        exp::runPerfect(P, vm::Personality::JikesRVM, 1);

    vm::ProfilerOptions Ex;
    Ex.Kind = vm::ProfilerKind::Exhaustive;
    Ex.ChargeExhaustiveCounters = true;
    exp::AccuracyCell ExCell =
        exp::measureAccuracy(P, vm::Personality::JikesRVM, Ex, Perfect, 1);

    exp::AccuracyCell CBSCell = exp::measureAccuracy(
        P, vm::Personality::JikesRVM,
        exp::chosenCBS(vm::Personality::JikesRVM), Perfect, 1);

    ExOvh.push_back(ExCell.OverheadPct);
    CBSOvh.push_back(CBSCell.OverheadPct);
    CBSAcc.push_back(CBSCell.AccuracyPct);
    TP.addRow({W.Name, TablePrinter::formatDouble(ExCell.OverheadPct, 1),
               TablePrinter::formatDouble(ExCell.AccuracyPct, 0),
               TablePrinter::formatDouble(CBSCell.OverheadPct, 2),
               TablePrinter::formatDouble(CBSCell.AccuracyPct, 0)});
  }
  TP.addSeparator();
  TP.addRow({"Average", TablePrinter::formatDouble(mean(ExOvh), 1), "100",
             TablePrinter::formatDouble(mean(CBSOvh), 2),
             TablePrinter::formatDouble(mean(CBSAcc), 0)});
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\npaper landmark: instrumented PICs cost 15-50%% depending "
              "on call density.\n");
  return 0;
}
