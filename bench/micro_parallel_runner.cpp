//===- bench/micro_parallel_runner.cpp - parallel engine microbench ------------===//
//
// Part of the CBSVM project.
//
// Google-benchmark scaling curves for the deterministic parallel
// experiment engine (experiments/ParallelRunner.h) as *host* code:
//
//  - BM_RunnerDispatchOverhead: empty tasks — the per-task cost of the
//    pool itself (context construction, queueing, index-order commit).
//  - BM_RunnerVMGrid/<jobs>: a realistic grid of short VM accuracy runs
//    fanned out over 1/2/4/8 workers. On a multi-core host, items/sec
//    should scale nearly linearly until jobs exceeds physical cores;
//    the committed results are byte-identical at every point on the
//    curve (asserted here per iteration).
//  - BM_MetricRegistryMerge: the commit-phase merge cost per registry.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"
#include "experiments/ParallelRunner.h"
#include "support/ArgParser.h"
#include "telemetry/MetricRegistry.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cbs;

static void BM_RunnerDispatchOverhead(benchmark::State &State) {
  exp::ParallelConfig Par;
  Par.Jobs = static_cast<unsigned>(State.range(0));
  constexpr size_t Tasks = 512;
  for (auto _ : State) {
    uint64_t Sum = 0;
    exp::ParallelRunner Runner(Par);
    Runner.run(
        Tasks, [](exp::ParallelRunner::TaskContext &) {},
        [&](exp::ParallelRunner::TaskContext &Ctx) { Sum += Ctx.Index; });
    if (Sum != Tasks * (Tasks - 1) / 2)
      State.SkipWithError("commit sum mismatch");
  }
  State.SetItemsProcessed(State.iterations() * Tasks);
}
BENCHMARK(BM_RunnerDispatchOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

static void BM_RunnerVMGrid(benchmark::State &State) {
  exp::ParallelConfig Par;
  Par.Jobs = static_cast<unsigned>(State.range(0));
  const wl::WorkloadInfo &W = *wl::findWorkload("jess");
  constexpr size_t Tasks = 8;

  // Serial reference for the determinism assertion.
  exp::ParallelConfig Serial;
  Serial.Jobs = 1;
  exp::AccuracyCell Reference = exp::measureAccuracyMedian(
      W, wl::InputSize::Small, vm::Personality::JikesRVM,
      exp::chosenCBS(vm::Personality::JikesRVM), Tasks, 1, Serial);

  for (auto _ : State) {
    exp::AccuracyCell Cell = exp::measureAccuracyMedian(
        W, wl::InputSize::Small, vm::Personality::JikesRVM,
        exp::chosenCBS(vm::Personality::JikesRVM), Tasks, 1, Par);
    benchmark::DoNotOptimize(Cell);
    if (Cell.AccuracyPct != Reference.AccuracyPct ||
        Cell.OverheadPct != Reference.OverheadPct)
      State.SkipWithError("parallel result diverged from serial schedule");
  }
  State.SetItemsProcessed(State.iterations() * Tasks);
}
BENCHMARK(BM_RunnerVMGrid)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

static void BM_MetricRegistryMerge(benchmark::State &State) {
  tel::MetricRegistry Source;
  for (int I = 0; I != 32; ++I) {
    Source.counter("bench.counter." + std::to_string(I)) += I;
    Source.histogram("bench.histogram." + std::to_string(I)).record(I * 7);
  }
  for (auto _ : State) {
    tel::MetricRegistry Parent;
    Parent.merge(Source);
    benchmark::DoNotOptimize(Parent.size());
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_MetricRegistryMerge);

// benchmark::Initialize consumes the flags it understands and compacts
// argv; anything left over is strict-rejected like every other binary.
int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  cbs::support::ArgParser Args(Argc, Argv);
  Args.finish();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
