//===- bench/figure1_timer_bias.cpp - Figure 1 demonstration -------------------===//
//
// Part of the CBSVM project.
//
// Figure 1: the paper's motivating example. A loop executes a long
// sequence of non-call instructions followed by two short calls; both
// calls execute exactly as often, but timer-based sampling attributes
// nearly everything to call_1 (the flag set during the non-call
// stretch is consumed by the first prologue) and almost nothing to
// call_2. CBS samples both evenly. The sweep below varies the length
// of the non-call stretch — the paper notes "the problem worsens as
// the number of non-call instructions increases".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "profiling/ProfilerRegistry.h"

using namespace cbs;
using namespace cbs::bench;

namespace {

struct Split {
  double Call1Share = 0;  ///< call_1's share of the two-call weight
  double Accuracy = 0;    ///< overlap vs the exhaustive profile
  uint64_t Samples = 0;
};

Split measure(const bc::Program &P, const exp::PerfectProfile &Perfect,
              const vm::ProfilerOptions &Prof) {
  vm::VMConfig Config =
      exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler = Prof;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  prof::DCGSnapshot DCG = VM.profile();
  uint64_t W1 = 0, W2 = 0;
  DCG.forEachEdge([&](prof::CallEdge E, uint64_t W) {
    std::string Name = P.qualifiedName(E.Callee);
    if (Name == "call_1")
      W1 += W;
    else if (Name == "call_2")
      W2 += W;
  });
  Split S;
  S.Call1Share =
      W1 + W2 == 0 ? 0 : 100.0 * static_cast<double>(W1) / (W1 + W2);
  S.Accuracy = prof::accuracy(DCG, Perfect.DCG);
  S.Samples = VM.stats().SamplesTaken;
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Figure 1");
  Args.finish();
  printHeader("Figure 1",
              "Timer-based sampling misattributes call frequency");

  TablePrinter TP;
  std::vector<std::string> Header{"Non-call work", "timer call_1 %",
                                  "timer acc", "cbs call_1 %", "cbs acc"};
  TP.setHeader(Header);
  Report.beginTable("timer_bias", Header);

  vm::ProfilerOptions Timer;
  prof::ProfilerRegistry::instance().configure("timer", Timer);
  vm::ProfilerOptions CBS = exp::chosenCBS(vm::Personality::JikesRVM);

  for (int32_t Work : {50, 200, 800, 3200, 12800}) {
    bc::Program P = wl::buildFigure1(Work, 4'000'000 / (Work + 60));
    exp::PerfectProfile Perfect =
        exp::runPerfect(P, vm::Personality::JikesRVM, 1);
    Split T = measure(P, Perfect, Timer);
    Split C = measure(P, Perfect, CBS);
    std::vector<std::string> Row{std::to_string(Work),
                                 TablePrinter::formatDouble(T.Call1Share, 1),
                                 TablePrinter::formatDouble(T.Accuracy, 0),
                                 TablePrinter::formatDouble(C.Call1Share, 1),
                                 TablePrinter::formatDouble(C.Accuracy, 0)};
    TP.addRow(Row);
    Report.addRow(Row);
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\nGround truth: call_1 and call_2 each execute 50%% of the "
              "calls in the loop.\nTimer sampling drifts toward 100%% "
              "call_1 as the non-call stretch grows; CBS\nstays at ~50%%.\n");
  return 0;
}
