//===- bench/ablation_phase_shift.cpp - continuous vs windowed profiling --------===//
//
// Part of the CBSVM project.
//
// §1 motivates CBS as "continuously collecting profiles, rather than
// only profiling a particular time window", and §3.2 warns that short
// profiling windows risk capturing "a short burst of non-representative
// behavior". This ablation runs the two-phase workload (hot call set
// shifts halfway through) and scores each profiler's repository against
// *phase B's* exhaustive profile at the end of the run — the profile an
// optimizer acting late in the run would want:
//
//   - code patching collected its fixed windows during phase A and shut
//     off: it still describes phase A;
//   - plain CBS keeps collecting, but its history dilutes phase B;
//   - CBS with periodic decay (the Jikes organizer behaviour) converges
//     to phase B.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "profiling/ProfilerRegistry.h"

using namespace cbs;
using namespace cbs::bench;

namespace {

/// Exhaustive profile of just phase B: run the whole program, then
/// subtract the phase-A-end snapshot. Easiest deterministic route: run
/// the phased program and snapshot the exhaustive profile at the
/// midpoint.
prof::DCGSnapshot phaseBProfile(const bc::Program &P,
                                uint64_t &MidCycles) {
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  prof::ProfilerRegistry::instance().configure("exhaustive", Config.Profiler);
  vm::VirtualMachine VM(P, Config);
  // Find total cycles first.
  VM.run();
  uint64_t Total = VM.stats().Cycles;
  MidCycles = Total / 2;

  vm::VirtualMachine First(P, Config);
  First.run(MidCycles);
  prof::DCGSnapshot PhaseA = First.profile();
  First.run();
  prof::DCGSnapshot Whole = First.profile();

  std::vector<prof::DCGSnapshot::Edge> PhaseB;
  Whole.forEachEdge([&](prof::CallEdge E, uint64_t W) {
    uint64_t Before = PhaseA.weight(E);
    if (W > Before)
      PhaseB.push_back({E, W - Before});
  });
  return prof::DCGSnapshot::fromEdges(std::move(PhaseB));
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  Args.finish();
  printHeader("Ablation: phase shift",
              "continuous profiling vs windows vs decay (§1, §3.2)");

  bc::Program P = wl::buildPhased(wl::InputSize::Small, 1);
  uint64_t MidCycles = 0;
  prof::DCGSnapshot PhaseB = phaseBProfile(P, MidCycles);

  struct Config {
    const char *Name;
    vm::ProfilerOptions Prof;
  };
  std::vector<Config> Configs;
  {
    const prof::ProfilerRegistry &Registry =
        prof::ProfilerRegistry::instance();
    Config Timer{"timer", {}};
    Registry.configure("timer", Timer.Prof);
    Configs.push_back(Timer);

    Config Patch{"code patching", {}};
    Registry.configure("patching", Patch.Prof);
    Patch.Prof.PromoteAfterInvocations = 500;
    Configs.push_back(Patch);

    Config CBS{"cbs(3,16)", exp::chosenCBS(vm::Personality::JikesRVM)};
    Configs.push_back(CBS);

    Config Decay{"cbs(3,16)+decay", exp::chosenCBS(vm::Personality::JikesRVM)};
    Decay.Prof.DecayEveryTicks = 8;
    Decay.Prof.DecayFactor = 0.7;
    Configs.push_back(Decay);
  }

  TablePrinter TP;
  TP.setHeader({"Profiler", "accuracy vs phase-B profile", "samples"});
  for (const Config &C : Configs) {
    vm::VMConfig VC = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
    VC.Profiler = C.Prof;
    vm::VirtualMachine VM(P, VC);
    VM.run();
    TP.addRow({C.Name,
               TablePrinter::formatDouble(
                   prof::accuracy(VM.profile(), PhaseB), 0),
               std::to_string(VM.stats().SamplesTaken)});
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf("\nThe metric scores each final repository against what a "
              "late-run optimizer\nneeds: the phase-B profile. One-shot "
              "windows freeze phase A; decayed CBS\ntracks the shift.\n");
  return 0;
}
