//===- bench/figure5_inlining_speedup.cpp - Figure 5 reproduction --------------===//
//
// Part of the CBSVM project.
//
// Figure 5: percentage speedup from profile-directed inlining using the
// timer-only baseline profile vs counter-based sampling, in steady
// state (warmup window discarded, throughput measured over the second
// window — the paper's "second minute").
//
//  Left graph (Jikes RVM personality): both configurations drive the
//  paper's *new* inliner (§5.1); the baseline is the same inliner with
//  no profile data. Paper landmarks: inlining matters most for mtrt,
//  jess, mpegaudio; cbs beats timer-only most clearly on javac (the
//  most complex benchmark); no benchmark is degraded.
//
//  Right graph (J9 personality): dynamic heuristics (§5.2) over the
//  static-heuristics-only baseline. Paper landmarks: cbs gives +8.7% on
//  mtrt and ~1% on most others; with timer-quality profiles the dynamic
//  heuristics *hurt* most benchmarks; dynamic heuristics also reduce
//  compile time (~9% on average).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"

using namespace cbs;
using namespace cbs::bench;

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Figure 5");
  unsigned Jobs = jobsFromArgs(Args);
  Args.finish();
  printHeader("Figure 5",
              "Speedup of profile-directed inlining: timer-only vs cbs");

  opt::NewJikesOracle NewInliner;
  opt::J9Oracle J9Dynamic;
  opt::J9Oracle::Params StaticParams;
  StaticParams.UseDynamic = false;
  opt::J9Oracle J9Static(StaticParams);

  // Each benchmark's three steady-state runs (base / timer / cbs) are
  // one task; rows commit in suite order so output is byte-identical
  // at any job count. The oracles are shared across workers read-only.
  tel::MetricRegistry RunnerMetrics;
  exp::ParallelConfig Par;
  Par.Jobs = Jobs;
  Par.Metrics = &RunnerMetrics;
  const std::vector<wl::WorkloadInfo> &Suite = wl::suite();

  // --- Left: Jikes RVM -----------------------------------------------------
  {
    std::printf("--- Jikes RVM personality: new inliner, speedup over "
                "no-profile inlining ---\n");
    TablePrinter TP;
    std::vector<std::string> Header{"Benchmark", "timer-only %", "cbs %",
                                    "recompiles", "compile Mcyc (cbs)"};
    TP.setHeader(Header);
    Report.beginTable("jikes_speedup", Header);
    std::vector<double> TimerAll, CBSAll;
    struct JikesResult {
      exp::ThroughputResult Base, Timer, CBS;
    };
    std::vector<JikesResult> Results(Suite.size());
    exp::ParallelRunner Runner(Par);
    Runner.run(
        Suite.size(),
        [&](exp::ParallelRunner::TaskContext &Ctx) {
          bc::Program P = Suite[Ctx.Index].Build(wl::InputSize::Steady, 1);

          exp::SpeedupOptions Base;
          Base.Pers = vm::Personality::JikesRVM;
          Base.Oracle = &NewInliner; // Static decisions from an empty DCG.
          Base.Prof.Kind = vm::ProfilerKind::None;

          exp::SpeedupOptions Timer = Base;
          Timer.Prof = exp::baseProfiler(vm::Personality::JikesRVM);

          exp::SpeedupOptions CBS = Base;
          CBS.Prof = exp::chosenCBS(vm::Personality::JikesRVM);

          Results[Ctx.Index] = {exp::measureThroughput(P, Base),
                                exp::measureThroughput(P, Timer),
                                exp::measureThroughput(P, CBS)};
          Ctx.Metrics.counter("exp.vm_runs") += 3;
        },
        [&](exp::ParallelRunner::TaskContext &Ctx) {
          const JikesResult &R = Results[Ctx.Index];
          double TimerPct = exp::speedupPercent(R.Timer, R.Base);
          double CBSPct = exp::speedupPercent(R.CBS, R.Base);
          TimerAll.push_back(TimerPct);
          CBSAll.push_back(CBSPct);
          std::vector<std::string> Row{
              Suite[Ctx.Index].Name, TablePrinter::formatDouble(TimerPct, 1),
              TablePrinter::formatDouble(CBSPct, 1),
              std::to_string(R.CBS.Recompilations),
              TablePrinter::formatDouble(R.CBS.CompileCycles / 1e6, 1)};
          TP.addRow(Row);
          Report.addRow(Row);
        });
    TP.addSeparator();
    std::vector<std::string> AvgRow{
        "Average", TablePrinter::formatDouble(mean(TimerAll), 1),
        TablePrinter::formatDouble(mean(CBSAll), 1), "", ""};
    TP.addRow(AvgRow);
    Report.addRow(AvgRow);
    std::fputs(TP.render().c_str(), stdout);
    std::printf("\n");
  }

  // --- Right: J9 -------------------------------------------------------------
  {
    std::printf("--- J9 personality: dynamic heuristics, speedup over "
                "static-only heuristics ---\n");
    TablePrinter TP;
    std::vector<std::string> Header{"Benchmark", "timer-only %", "cbs %",
                                    "compile Mcyc static",
                                    "compile Mcyc cbs"};
    TP.setHeader(Header);
    Report.beginTable("j9_speedup", Header);
    std::vector<double> TimerAll, CBSAll, CompileDelta;
    struct J9Result {
      exp::ThroughputResult Base, Timer, CBS;
    };
    std::vector<J9Result> Results(Suite.size());
    exp::ParallelRunner Runner(Par);
    Runner.run(
        Suite.size(),
        [&](exp::ParallelRunner::TaskContext &Ctx) {
          bc::Program P = Suite[Ctx.Index].Build(wl::InputSize::Steady, 1);

          exp::SpeedupOptions Base;
          Base.Pers = vm::Personality::J9;
          Base.Oracle = &J9Static;
          Base.Prof.Kind = vm::ProfilerKind::None;

          exp::SpeedupOptions Timer = Base;
          Timer.Prof = exp::baseProfiler(vm::Personality::J9);
          Timer.Oracle = &J9Dynamic;

          exp::SpeedupOptions CBS = Base;
          CBS.Prof = exp::chosenCBS(vm::Personality::J9);
          CBS.Oracle = &J9Dynamic;

          Results[Ctx.Index] = {exp::measureThroughput(P, Base),
                                exp::measureThroughput(P, Timer),
                                exp::measureThroughput(P, CBS)};
          Ctx.Metrics.counter("exp.vm_runs") += 3;
        },
        [&](exp::ParallelRunner::TaskContext &Ctx) {
          const J9Result &R = Results[Ctx.Index];
          double TimerPct = exp::speedupPercent(R.Timer, R.Base);
          double CBSPct = exp::speedupPercent(R.CBS, R.Base);
          TimerAll.push_back(TimerPct);
          CBSAll.push_back(CBSPct);
          if (R.Base.CompileCycles > 0)
            CompileDelta.push_back(
                100.0 * (static_cast<double>(R.CBS.CompileCycles) /
                             R.Base.CompileCycles -
                         1.0));
          std::vector<std::string> Row{
              Suite[Ctx.Index].Name, TablePrinter::formatDouble(TimerPct, 1),
              TablePrinter::formatDouble(CBSPct, 1),
              TablePrinter::formatDouble(R.Base.CompileCycles / 1e6, 1),
              TablePrinter::formatDouble(R.CBS.CompileCycles / 1e6, 1)};
          TP.addRow(Row);
          Report.addRow(Row);
        });
    TP.addSeparator();
    std::vector<std::string> AvgRow{
        "Average", TablePrinter::formatDouble(mean(TimerAll), 1),
        TablePrinter::formatDouble(mean(CBSAll), 1), "", ""};
    TP.addRow(AvgRow);
    Report.addRow(AvgRow);
    std::fputs(TP.render().c_str(), stdout);
    std::printf("\nAOS compile-cycle change (hot methods only), "
                "dynamic(cbs) vs static-only: %.1f%%\n",
                mean(CompileDelta));
  }

  // --- §6.3's compile-time claim, measured the way J9 compiles ---------
  // J9 JIT-compiles *every* executed method, so "dynamic heuristics
  // reduce compilation time by 9%" is a whole-program statement: total
  // compile cost over all methods under the dynamic plan vs the
  // static-only plan. The AOS numbers above only cover the few hot
  // methods it recompiles (where profile-enabled guarded inlining can
  // even add work); this is the faithful comparison.
  {
    std::printf("\n--- whole-program compile cost: dynamic(cbs profile) "
                "vs static-only plans ---\n");
    TablePrinter TP;
    std::vector<std::string> Header{"Benchmark", "static Mcyc",
                                    "dynamic Mcyc", "change %"};
    TP.setHeader(Header);
    Report.beginTable("whole_program_compile_cost", Header);
    vm::CostModel Costs;
    std::vector<double> Deltas;
    std::vector<std::pair<uint64_t, uint64_t>> CostPairs(Suite.size());
    exp::ParallelRunner Runner(Par);
    Runner.run(
        Suite.size(),
        [&](exp::ParallelRunner::TaskContext &Ctx) {
          bc::Program P = Suite[Ctx.Index].Build(wl::InputSize::Small, 1);
          // Mature cbs profile from a full small-input run.
          vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::J9, 1);
          Config.Profiler = exp::chosenCBS(vm::Personality::J9);
          vm::VirtualMachine VM(P, Config);
          VM.run();

          opt::InlinePlan StaticPlan =
              J9Static.plan(P, prof::DCGSnapshot());
          opt::InlinePlan DynPlan = J9Dynamic.plan(P, VM.profile());

          auto totalCompile = [&](const opt::InlinePlan &Plan) {
            uint64_t Total = 0;
            for (bc::MethodId M = 0; M != P.numMethods(); ++M)
              Total += opt::compileMethod(P, M, 2, Plan, Costs)
                           .CompileCostCycles;
            return Total;
          };
          CostPairs[Ctx.Index] = {totalCompile(StaticPlan),
                                  totalCompile(DynPlan)};
          Ctx.Metrics.counter("exp.vm_runs") += 1;
        },
        [&](exp::ParallelRunner::TaskContext &Ctx) {
          auto [StaticCost, DynCost] = CostPairs[Ctx.Index];
          double Delta =
              100.0 * (static_cast<double>(DynCost) / StaticCost - 1.0);
          Deltas.push_back(Delta);
          std::vector<std::string> Row{
              Suite[Ctx.Index].Name,
              TablePrinter::formatDouble(StaticCost / 1e6, 1),
              TablePrinter::formatDouble(DynCost / 1e6, 1),
              TablePrinter::formatDouble(Delta, 1)};
          TP.addRow(Row);
          Report.addRow(Row);
        });
    TP.addSeparator();
    std::vector<std::string> AvgRow{"Average", "", "",
                                    TablePrinter::formatDouble(mean(Deltas),
                                                               1)};
    TP.addRow(AvgRow);
    Report.addRow(AvgRow);
    std::fputs(TP.render().c_str(), stdout);
    std::printf("\npaper landmark: dynamic heuristics reduced compilation "
                "time ~9%% on average.\n");
  }
  printRunnerSummary(RunnerMetrics);
  return 0;
}
