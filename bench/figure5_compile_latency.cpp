//===- bench/figure5_compile_latency.cpp - latency-vs-speedup sweep -------------===//
//
// Part of the CBSVM project.
//
// Figure 5 companion: how the modelled background-compile latency
// shifts *when* recompiled code installs without changing what the
// steady-state measurement window sees. Sweeps CompileLatencyScale
// over {0, 1, 4, 16, 64} on the Jikes personality with the new inliner
// driven by chosen-CBS profiles, reporting the steady-state speedup
// over no-profile inlining, the install count, the first install's
// virtual cycle, and the mean enqueue-to-install wait.
//
// Expected shape: first-install cycle and mean wait grow monotonically
// with the scale (the latency model is real), while the speedup at the
// default scale (1) stays within noise of scale 0 — installs land well
// inside the warmup window, so Figure 5's steady-state conclusions are
// insensitive to the modelled compile latency until it grows by orders
// of magnitude.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "telemetry/TraceSink.h"

#include <algorithm>

using namespace cbs;
using namespace cbs::bench;

namespace {

constexpr double Scales[] = {0, 1, 4, 16, 64};
constexpr size_t NumScales = sizeof(Scales) / sizeof(Scales[0]);

struct ScaleResult {
  exp::ThroughputResult Run;
  uint64_t FirstInstallCycle = 0; ///< 0 when nothing installed
  double MeanWaitCycles = 0;
  uint64_t Installs = 0;
};

ScaleResult measureAtScale(const bc::Program &P, const opt::InlineOracle *O,
                           double Scale) {
  tel::CollectorSink Sink;
  exp::SpeedupOptions Options;
  Options.Pers = vm::Personality::JikesRVM;
  Options.Oracle = O;
  Options.Prof = exp::chosenCBS(vm::Personality::JikesRVM);
  Options.CompileLatencyScale = Scale;
  Options.Trace = &Sink;

  ScaleResult R;
  R.Run = exp::measureThroughput(P, Options);
  uint64_t First = UINT64_MAX, WaitSum = 0;
  for (const tel::TraceEvent &E : Sink.events()) {
    if (E.Kind != tel::EventKind::CompileInstall)
      continue;
    ++R.Installs;
    First = std::min(First, E.Cycles);
    WaitSum += E.C; // enqueue-to-install wait in virtual cycles
  }
  R.FirstInstallCycle = First == UINT64_MAX ? 0 : First;
  R.MeanWaitCycles =
      R.Installs == 0 ? 0 : static_cast<double>(WaitSum) / R.Installs;
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  support::ArgParser Args(Argc, Argv);
  BenchReport Report(Args, "Figure 5 latency");
  unsigned Jobs = jobsFromArgs(Args);
  Args.finish();
  printHeader("Figure 5 latency",
              "Compile-latency sweep: install timing vs steady-state speedup");

  opt::NewJikesOracle NewInliner;
  const std::vector<wl::WorkloadInfo> &Suite = wl::suite();

  struct WorkloadResult {
    exp::ThroughputResult Base;
    ScaleResult AtScale[NumScales];
  };
  std::vector<WorkloadResult> Results(Suite.size());

  tel::MetricRegistry RunnerMetrics;
  exp::ParallelConfig Par;
  Par.Jobs = Jobs;
  Par.Metrics = &RunnerMetrics;
  exp::ParallelRunner Runner(Par);

  TablePrinter TP;
  std::vector<std::string> Header{"Benchmark",        "scale",
                                  "speedup %",        "installs",
                                  "first install Mcyc", "mean wait kcyc"};
  TP.setHeader(Header);
  Report.beginTable("latency_sweep", Header);
  std::vector<double> SpeedupByScale[NumScales];

  Runner.run(
      Suite.size(),
      [&](exp::ParallelRunner::TaskContext &Ctx) {
        bc::Program P = Suite[Ctx.Index].Build(wl::InputSize::Steady, 1);
        exp::SpeedupOptions Base;
        Base.Pers = vm::Personality::JikesRVM;
        Base.Oracle = &NewInliner; // Static decisions from an empty DCG.
        Base.Prof.Kind = vm::ProfilerKind::None;
        Results[Ctx.Index].Base = exp::measureThroughput(P, Base);
        for (size_t SI = 0; SI != NumScales; ++SI)
          Results[Ctx.Index].AtScale[SI] =
              measureAtScale(P, &NewInliner, Scales[SI]);
        Ctx.Metrics.counter("exp.vm_runs") += 1 + NumScales;
      },
      [&](exp::ParallelRunner::TaskContext &Ctx) {
        const WorkloadResult &R = Results[Ctx.Index];
        for (size_t SI = 0; SI != NumScales; ++SI) {
          const ScaleResult &S = R.AtScale[SI];
          double Pct = exp::speedupPercent(S.Run, R.Base);
          SpeedupByScale[SI].push_back(Pct);
          std::vector<std::string> Row{
              SI == 0 ? Suite[Ctx.Index].Name : "",
              TablePrinter::formatDouble(Scales[SI], 0),
              TablePrinter::formatDouble(Pct, 1),
              std::to_string(S.Installs),
              TablePrinter::formatDouble(S.FirstInstallCycle / 1e6, 2),
              TablePrinter::formatDouble(S.MeanWaitCycles / 1e3, 1)};
          TP.addRow(Row);
          Report.addRow(Row);
        }
      });

  TP.addSeparator();
  for (size_t SI = 0; SI != NumScales; ++SI) {
    std::vector<std::string> AvgRow{
        SI == 0 ? "Average" : "", TablePrinter::formatDouble(Scales[SI], 0),
        TablePrinter::formatDouble(mean(SpeedupByScale[SI]), 1), "", "", ""};
    TP.addRow(AvgRow);
    Report.addRow(AvgRow);
  }
  std::fputs(TP.render().c_str(), stdout);
  std::printf(
      "\nReading: first-install cycle and mean wait must grow with the "
      "scale; the scale-1 speedup column must match scale 0 within "
      "noise (installs land inside the warmup window either way).\n");
  return 0;
}
