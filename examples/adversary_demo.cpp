//===- examples/adversary_demo.cpp - defeating fixed CBS parameters -------------===//
//
// Part of the CBSVM project.
//
// §4: "For any fixed values of the parameters STRIDE and
// SAMPLES_PER_TIMER_INTERRUPT, an adversary program can be constructed
// for which our technique will collect an inaccurate profile."
//
// This example constructs that adversary — a loop whose call bursts
// align exactly with the profiling window — and shows (a) the fixed
// initial-skip configuration collecting a wildly wrong profile, and
// (b) the randomized initial skip restoring correctness, which is why
// the paper prescribes it.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"

#include <cstdio>

using namespace cbs;

static void runOnce(const bc::Program &P, prof::SkipPolicy Skip,
                    const char *Label) {
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 4;
  Config.Profiler.CBS.SamplesPerTick = 2;
  Config.Profiler.CBS.Skip = Skip;
  Config.TimerJitterPct = 0; // The adversary attacks exact periodicity.
  vm::VirtualMachine VM(P, Config);
  VM.run();

  prof::DCGSnapshot DCG = VM.profile();
  uint64_t Decoy = 0, Victim = 0;
  DCG.forEachEdge([&](prof::CallEdge E, uint64_t W) {
    if (P.qualifiedName(E.Callee) == "decoy")
      Decoy += W;
    else if (P.qualifiedName(E.Callee) == "victim")
      Victim += W;
  });
  double Total = static_cast<double>(Decoy + Victim);
  std::printf("%-22s decoy %5.1f%%  victim %5.1f%%   (%llu samples)\n",
              Label, Total == 0 ? 0 : 100.0 * Decoy / Total,
              Total == 0 ? 0 : 100.0 * Victim / Total,
              static_cast<unsigned long long>(VM.stats().SamplesTaken));
}

int main() {
  // Burst of Stride*Samples+1 = 9 calls per iteration: 1 decoy + 8
  // victims. Ground truth: decoy 11.1%, victim 88.9%.
  bc::Program P = wl::buildAdversary(/*CallsPerBurst=*/9,
                                     /*Iterations=*/150'000);

  std::printf("adversary program: each loop iteration = quiet stretch, "
              "then 1 decoy call + 8 victim calls\n");
  std::printf("ground truth:          decoy  11.1%%  victim  88.9%%\n\n");

  runOnce(P, prof::SkipPolicy::Fixed, "fixed initial skip:");
  runOnce(P, prof::SkipPolicy::RoundRobin, "round-robin skip:");
  runOnce(P, prof::SkipPolicy::Random, "random skip:");

  std::printf("\nWith the fixed skip, every window opens at the same "
              "phase of the burst and\nsamples the same positions "
              "forever. Randomizing the initial count gives every\ncall "
              "in the window an equal chance (§4), defusing the "
              "adversary.\n");
  return 0;
}
