//===- examples/inlining_tour.cpp - profile-directed inlining tour -------------===//
//
// Part of the CBSVM project.
//
// Walks the full feedback loop of the paper: run a workload under CBS,
// build inline plans with each of the three oracles from the collected
// profile, show what they decide at an interesting call site, and
// measure the steady-state effect of each plan.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "bytecode/Printer.h"
#include "experiments/Experiments.h"
#include "opt/Compiler.h"

#include <cstdio>

using namespace cbs;

static const char *kindName(opt::InlineDecision::Kind K) {
  switch (K) {
  case opt::InlineDecision::Kind::None:
    return "leave as a call";
  case opt::InlineDecision::Kind::Direct:
    return "inline directly";
  case opt::InlineDecision::Kind::Guarded:
    return "guarded inline";
  }
  return "?";
}

int main() {
  // jess: a rule engine with one hot virtual site whose receiver
  // distribution is skewed 44/25/12/6/6/6.
  bc::Program P = wl::buildJess(wl::InputSize::Small, 1);

  // Step 1: profile with counter-based sampling.
  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
  vm::VirtualMachine VM(P, Config);
  VM.run();
  prof::DCGSnapshot DCG = VM.profile();
  std::printf("profiled %llu samples over %llu ticks\n\n",
              static_cast<unsigned long long>(VM.stats().SamplesTaken),
              static_cast<unsigned long long>(VM.stats().TimerTicks));
  std::printf("%s\n", DCG.str(P, 10).c_str());

  // Step 2: find the hot virtual site (the rule-matching dispatch).
  bc::SiteId HotVirtual = bc::InvalidSiteId;
  uint64_t BestWeight = 0;
  for (bc::SiteId S = 0; S != P.numSites(); ++S) {
    const bc::SiteInfo &Info = P.site(S);
    const bc::Instruction &I = P.method(Info.Caller).Code[Info.PC];
    if (I.Op != bc::Opcode::InvokeVirtual)
      continue;
    uint64_t W = 0;
    for (const auto &[Edge, Weight] : DCG.siteDistribution(S))
      W += Weight;
    if (W > BestWeight) {
      BestWeight = W;
      HotVirtual = S;
    }
  }
  std::printf("hot virtual site: site %u in %s, distribution:\n",
              HotVirtual, P.qualifiedName(P.site(HotVirtual).Caller).c_str());
  for (const auto &[Edge, Weight] : DCG.siteDistribution(HotVirtual))
    std::printf("  -> %-14s %6.1f%%\n", P.qualifiedName(Edge.Callee).c_str(),
                100.0 * Weight / BestWeight);

  // Step 3: what does each oracle decide there?
  opt::OldJikesOracle Old;
  opt::NewJikesOracle New;
  opt::J9Oracle J9;
  std::printf("\noracle decisions at that site:\n");
  for (const opt::InlineOracle *O :
       std::initializer_list<const opt::InlineOracle *>{&Old, &New, &J9}) {
    opt::InlinePlan Plan = O->plan(P, DCG);
    const opt::InlineDecision *D = Plan.decisionFor(HotVirtual);
    std::printf("  %-10s: %s", O->name(),
                D ? kindName(D->K) : "leave as a call");
    if (D && D->K == opt::InlineDecision::Kind::Guarded) {
      std::printf(" of");
      for (const opt::GuardedTarget &GT : D->Guarded)
        std::printf(" %s", P.qualifiedName(GT.Target).c_str());
    }
    std::printf("\n");
  }

  // Step 4: show the rewritten code for the hottest method under the
  // new inliner.
  {
    opt::InlinePlan Plan = New.plan(P, DCG);
    bc::MethodId Caller = P.site(HotVirtual).Caller;
    opt::InlineResult R = opt::inlineMethod(P, Caller, Plan);
    std::printf("\n%s after inlining: %zu -> %zu instructions, %u bodies "
                "spliced\n",
                P.qualifiedName(Caller).c_str(),
                P.method(Caller).Code.size(), R.Code.size(),
                R.InlinedBodies);
  }

  // Step 5: steady-state effect of each oracle's plan.
  std::printf("\nsteady-state throughput by oracle (vs trivial-only "
              "plans):\n");
  bc::Program Steady = wl::buildJess(wl::InputSize::Steady, 1);
  exp::SpeedupOptions Base;
  Base.Prof = exp::chosenCBS(vm::Personality::JikesRVM);
  Base.Oracle = nullptr;
  exp::ThroughputResult BaseR = exp::measureThroughput(Steady, Base);
  for (const opt::InlineOracle *O :
       std::initializer_list<const opt::InlineOracle *>{&Old, &New, &J9}) {
    exp::SpeedupOptions Opts = Base;
    Opts.Oracle = O;
    exp::ThroughputResult R = exp::measureThroughput(Steady, Opts);
    std::printf("  %-10s: %+5.1f%%  (%llu recompilations)\n", O->name(),
                exp::speedupPercent(R, BaseR),
                static_cast<unsigned long long>(R.Recompilations));
  }
  return 0;
}
