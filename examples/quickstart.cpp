//===- examples/quickstart.cpp - Build, run, profile ---------------------------===//
//
// Part of the CBSVM project.
//
// The smallest end-to-end tour: construct a program with the builder
// API, verify it, run it under counter-based sampling, and compare the
// sampled dynamic call graph against the exhaustive one.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "bytecode/Printer.h"
#include "bytecode/Verifier.h"
#include "profiling/OverlapMetric.h"
#include "vm/VirtualMachine.h"

#include <cstdio>

using namespace cbs;

static bc::Program buildDemo() {
  bc::ProgramBuilder PB;

  // Two callees with a 3:1 call ratio — the profile should see it.
  bc::MethodId Hot = PB.declareStatic("hotHelper", {bc::ValKind::Int},
                                      /*HasResult=*/true);
  {
    bc::MethodBuilder MB = PB.defineMethod(Hot);
    MB.work(10).iload(0).iconst(3).imul().iret();
    MB.finish();
  }
  bc::MethodId Cold = PB.declareStatic("coldHelper", {bc::ValKind::Int},
                                       /*HasResult=*/true);
  {
    bc::MethodBuilder MB = PB.defineMethod(Cold);
    MB.work(25).iload(0).iconst(7).iadd().iret();
    MB.finish();
  }

  bc::MethodId Main = PB.declareStatic("main");
  {
    bc::MethodBuilder MB = PB.defineMethod(Main);
    // for (i = 400000; i > 0; --i) { acc = hot(i); if (i % 4 == 0) acc = cold(acc); }
    MB.iconst(0).istore(1);
    MB.iconst(400000).istore(0);
    bc::Label Head = MB.newLabel(), Exit = MB.newLabel(), Skip = MB.newLabel();
    MB.bind(Head).iload(0).ifLe(Exit);
    MB.iload(0).invokeStatic(Hot).istore(1);
    MB.iload(0).iconst(3).iand().ifNe(Skip);
    MB.iload(1).invokeStatic(Cold).istore(1);
    MB.bind(Skip).iinc(0, -1).jump(Head);
    MB.bind(Exit).iload(1).print();
    MB.finish();
  }
  return PB.finish(Main);
}

int main() {
  bc::Program P = buildDemo();

  bc::VerifyResult Verify = bc::verifyProgram(P);
  if (!Verify.ok()) {
    std::fprintf(stderr, "verification failed:\n%s", Verify.str().c_str());
    return 1;
  }
  std::printf("== program ==\n%s\n", bc::printProgram(P).c_str());

  // Ground truth: exhaustive profiling (free in the cost model).
  vm::VMConfig PerfectConfig;
  PerfectConfig.Profiler.Kind = vm::ProfilerKind::Exhaustive;
  PerfectConfig.Profiler.ChargeExhaustiveCounters = false;
  vm::VirtualMachine PerfectVM(P, PerfectConfig);
  PerfectVM.run();
  std::printf("perfect run: %s, %llu cycles, %llu calls\n",
              vm::runStateName(PerfectVM.state()),
              static_cast<unsigned long long>(PerfectVM.stats().Cycles),
              static_cast<unsigned long long>(
                  PerfectVM.stats().CallsExecuted));
  std::printf("%s\n", PerfectVM.profile().str(P).c_str());

  // The paper's technique: CBS with Stride=3, 16 samples per tick.
  vm::VMConfig Config;
  Config.Profiler.Kind = vm::ProfilerKind::CBS;
  Config.Profiler.CBS.Stride = 3;
  Config.Profiler.CBS.SamplesPerTick = 16;
  vm::VirtualMachine VM(P, Config);
  VM.run();
  std::printf("cbs run: %s, %llu cycles, %llu samples, %llu ticks\n",
              vm::runStateName(VM.state()),
              static_cast<unsigned long long>(VM.stats().Cycles),
              static_cast<unsigned long long>(VM.stats().SamplesTaken),
              static_cast<unsigned long long>(VM.stats().TimerTicks));
  std::printf("%s\n", VM.profile().str(P).c_str());

  double Accuracy = prof::accuracy(VM.profile(), PerfectVM.profile());
  double Overhead =
      100.0 *
      (static_cast<double>(VM.stats().Cycles) -
       static_cast<double>(PerfectVM.stats().Cycles)) /
      static_cast<double>(PerfectVM.stats().Cycles);
  std::printf("accuracy (overlap vs perfect): %.1f%%\n", Accuracy);
  std::printf("overhead vs unprofiled: %.2f%%\n", Overhead);
  return 0;
}
