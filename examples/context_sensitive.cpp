//===- examples/context_sensitive.cpp - CCT profiling demo ---------------------===//
//
// Part of the CBSVM project.
//
// The paper notes CBS "is easily extensible to context-sensitive
// profiling" (§1): instead of recording just the top caller→callee pair
// per sample, record the whole walked stack into a calling context
// tree. This example profiles the kawa workload (deep recursive
// evaluation) both ways and shows what the flat DCG cannot express:
// the same callee reached through different contexts.
//
//===----------------------------------------------------------------------===//

#include "experiments/Experiments.h"

#include <cstdio>

using namespace cbs;

int main() {
  bc::Program P = wl::buildKawa(wl::InputSize::Small, 1);

  vm::VMConfig Config = exp::jitOnlyConfig(P, vm::Personality::JikesRVM, 1);
  Config.Profiler = exp::chosenCBS(vm::Personality::JikesRVM);
  Config.Profiler.ContextSensitive = true;
  vm::VirtualMachine VM(P, Config);
  VM.run();

  const prof::CallingContextTree &CCT = VM.contextTree();
  prof::DCGSnapshot Flat = VM.profile();

  std::printf("samples:          %llu\n",
              static_cast<unsigned long long>(VM.stats().SamplesTaken));
  std::printf("flat DCG edges:   %zu\n", Flat.numEdges());
  std::printf("CCT nodes:        %zu (max depth %zu)\n", CCT.numNodes(),
              CCT.maxDepth());
  std::printf("\nThe CCT needs more nodes than the DCG has edges exactly "
              "when the same\nedge occurs under multiple calling contexts "
              "— kawa's recursive evaluator\nreaches Literal::eval both "
              "directly from a form and nested under\nApplication/IfExpr "
              "frames.\n\n");

  // Projections: the context-insensitive view is recoverable.
  prof::DCGSnapshot Projected = CCT.projectLeafEdges();
  std::printf("projectLeafEdges() total weight %llu == flat profile "
              "weight %llu\n",
              static_cast<unsigned long long>(Projected.totalWeight()),
              static_cast<unsigned long long>(Flat.totalWeight()));

  std::printf("\ntop of the calling context tree:\n%s\n",
              CCT.str(P, 24).c_str());
  return 0;
}
