//===- tools/cbsvm.cpp - command-line driver ------------------------------------===//
//
// Part of the CBSVM project.
//
// A command-line front end over the library:
//
//   cbsvm list
//     List the built-in workloads.
//
//   cbsvm run <workload> [options]
//     Execute a workload under a chosen profiler and report the run
//     statistics and the hottest call edges.
//       --size small|large       input size            (default small)
//       --profiler none|timer|cbs|patching|exhaustive  (default cbs)
//       --stride N --samples N   CBS window geometry   (default 3, 16)
//       --personality jikes|j9                         (default jikes)
//       --seed N                                       (default 1)
//       --edges N                top edges to print    (default 15)
//       --save FILE              write the profile (cbsvm-dcg format)
//       --accuracy               also run exhaustively and score the
//                                sampled profile with the overlap metric
//
//   cbsvm disasm <workload> [--size small|large] [--method NAME]
//     Disassemble a workload (or one method of it).
//
//   cbsvm compare <fileA> <fileB>
//     Overlap percentage between two saved profiles.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Printer.h"
#include "experiments/Experiments.h"
#include "profiling/OverlapMetric.h"
#include "profiling/ProfileIO.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cbs;

namespace {

[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "cbsvm: %s\n", Message.c_str());
  std::fprintf(stderr, "usage: cbsvm list | run <workload> [options] | "
                       "disasm <workload> | compare <a> <b>\n");
  std::exit(2);
}

struct ArgParser {
  ArgParser(int Argc, char **Argv) : Args(Argv + 1, Argv + Argc) {}

  std::string positional(const char *What) {
    for (size_t I = 0; I != Args.size(); ++I)
      if (!Args[I].empty() && Args[I][0] != '-' && !Consumed[I]) {
        Consumed[I] = true;
        return Args[I];
      }
    usageError(std::string("missing ") + What);
  }

  std::string option(const char *Name, const char *Default) {
    for (size_t I = 0; I + 1 < Args.size(); ++I)
      if (Args[I] == Name) {
        Consumed[I] = Consumed[I + 1] = true;
        return Args[I + 1];
      }
    return Default;
  }

  bool flag(const char *Name) {
    for (size_t I = 0; I != Args.size(); ++I)
      if (Args[I] == Name) {
        Consumed[I] = true;
        return true;
      }
    return false;
  }

  std::vector<std::string> Args;
  std::vector<bool> Consumed = std::vector<bool>(Args.size(), false);
};

wl::InputSize parseSize(const std::string &S) {
  if (S == "small")
    return wl::InputSize::Small;
  if (S == "large")
    return wl::InputSize::Large;
  if (S == "steady")
    return wl::InputSize::Steady;
  usageError("unknown size '" + S + "'");
}

vm::Personality parsePersonality(const std::string &S) {
  if (S == "jikes")
    return vm::Personality::JikesRVM;
  if (S == "j9")
    return vm::Personality::J9;
  usageError("unknown personality '" + S + "'");
}

int cmdList() {
  std::printf("built-in workloads (Table 1 suite):\n");
  for (const wl::WorkloadInfo &W : wl::suite())
    std::printf("  %-10s %s\n", W.Name,
                W.Multithreaded ? "(multithreaded)" : "");
  std::printf("see also: figure1 / adversary / phased programs via the "
              "library API\n");
  return 0;
}

int cmdRun(ArgParser &Args) {
  std::string Name = Args.positional("workload name");
  const wl::WorkloadInfo *W = wl::findWorkload(Name);
  if (!W)
    usageError("unknown workload '" + Name + "' (try 'cbsvm list')");

  wl::InputSize Size = parseSize(Args.option("--size", "small"));
  vm::Personality Pers =
      parsePersonality(Args.option("--personality", "jikes"));
  uint64_t Seed = std::stoull(Args.option("--seed", "1"));
  std::string ProfilerName = Args.option("--profiler", "cbs");
  size_t Edges = std::stoull(Args.option("--edges", "15"));

  bc::Program P = W->Build(Size, Seed);
  vm::VMConfig Config = exp::jitOnlyConfig(P, Pers, Seed);
  if (ProfilerName == "none")
    Config.Profiler.Kind = vm::ProfilerKind::None;
  else if (ProfilerName == "timer")
    Config.Profiler.Kind = vm::ProfilerKind::Timer;
  else if (ProfilerName == "cbs")
    Config.Profiler.Kind = vm::ProfilerKind::CBS;
  else if (ProfilerName == "patching")
    Config.Profiler.Kind = vm::ProfilerKind::CodePatching;
  else if (ProfilerName == "exhaustive") {
    Config.Profiler.Kind = vm::ProfilerKind::Exhaustive;
    Config.Profiler.ChargeExhaustiveCounters = false;
  } else
    usageError("unknown profiler '" + ProfilerName + "'");
  Config.Profiler.CBS.Stride =
      static_cast<uint32_t>(std::stoul(Args.option("--stride", "3")));
  Config.Profiler.CBS.SamplesPerTick = static_cast<uint32_t>(
      std::stoul(Args.option("--samples", "16")));

  vm::VirtualMachine VM(P, Config);
  vm::RunState State = VM.run();
  std::printf("%s-%s: %s after %.2fM cycles (%.2fM instructions, %llu "
              "calls, %llu ticks, %llu samples)\n",
              W->Name, wl::inputSizeName(Size), vm::runStateName(State),
              VM.stats().Cycles / 1e6, VM.stats().Instructions / 1e6,
              static_cast<unsigned long long>(VM.stats().CallsExecuted),
              static_cast<unsigned long long>(VM.stats().TimerTicks),
              static_cast<unsigned long long>(VM.stats().SamplesTaken));
  if (State == vm::RunState::Trapped) {
    std::fprintf(stderr, "trap: %s\n", VM.trapMessage().c_str());
    return 1;
  }

  const prof::DynamicCallGraph &DCG = VM.profile();
  std::printf("\n%s", DCG.str(P, Edges).c_str());

  if (Args.flag("--accuracy")) {
    exp::PerfectProfile Perfect = exp::runPerfect(P, Pers, Seed);
    double Overhead =
        100.0 *
        (static_cast<double>(VM.stats().Cycles) -
         static_cast<double>(Perfect.BaseCycles)) /
        static_cast<double>(Perfect.BaseCycles);
    std::printf("\naccuracy (overlap vs exhaustive): %.1f%%   overhead: "
                "%.2f%%\n",
                prof::accuracy(DCG, Perfect.DCG), Overhead);
  }

  std::string SavePath = Args.option("--save", "");
  if (!SavePath.empty()) {
    std::ofstream Out(SavePath);
    if (!Out)
      usageError("cannot write '" + SavePath + "'");
    Out << prof::serializeDCG(DCG);
    std::printf("\nprofile written to %s\n", SavePath.c_str());
  }
  return 0;
}

int cmdDisasm(ArgParser &Args) {
  std::string Name = Args.positional("workload name");
  const wl::WorkloadInfo *W = wl::findWorkload(Name);
  if (!W)
    usageError("unknown workload '" + Name + "'");
  bc::Program P =
      W->Build(parseSize(Args.option("--size", "small")), /*Seed=*/1);
  std::string MethodName = Args.option("--method", "");
  if (MethodName.empty()) {
    std::fputs(bc::printProgram(P).c_str(), stdout);
    return 0;
  }
  for (bc::MethodId M = 0; M != P.numMethods(); ++M)
    if (P.qualifiedName(M) == MethodName) {
      std::fputs(bc::printMethod(P, M).c_str(), stdout);
      return 0;
    }
  usageError("no method named '" + MethodName + "'");
}

int cmdCompare(ArgParser &Args) {
  auto Load = [](const std::string &Path) {
    std::ifstream In(Path);
    if (!In)
      usageError("cannot read '" + Path + "'");
    std::ostringstream SS;
    SS << In.rdbuf();
    prof::ParseResult R = prof::parseDCG(SS.str());
    if (!R.ok())
      usageError(Path + ": " + R.Error);
    return *R.Graph;
  };
  std::string PathA = Args.positional("first profile");
  std::string PathB = Args.positional("second profile");
  prof::DynamicCallGraph A = Load(PathA);
  prof::DynamicCallGraph B = Load(PathB);
  std::printf("%-30s %zu edges, weight %llu\n", PathA.c_str(), A.numEdges(),
              static_cast<unsigned long long>(A.totalWeight()));
  std::printf("%-30s %zu edges, weight %llu\n", PathB.c_str(), B.numEdges(),
              static_cast<unsigned long long>(B.totalWeight()));
  std::printf("overlap: %.2f%%\n", prof::overlap(A, B));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usageError("missing command");
  std::string Command = Argv[1];
  ArgParser Args(Argc - 1, Argv + 1);
  if (Command == "list")
    return cmdList();
  if (Command == "run")
    return cmdRun(Args);
  if (Command == "disasm")
    return cmdDisasm(Args);
  if (Command == "compare")
    return cmdCompare(Args);
  usageError("unknown command '" + Command + "'");
}
