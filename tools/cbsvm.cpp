//===- tools/cbsvm.cpp - command-line driver ------------------------------------===//
//
// Part of the CBSVM project.
//
// A command-line front end over the library:
//
//   cbsvm list
//     List the built-in workloads.
//
//   cbsvm run <workload> [options]
//     Execute a workload under a chosen profiler and report the run
//     statistics and the hottest call edges. The workload name may also
//     be "phased" (the two-phase program used by the convergence
//     studies), which is not part of the Table 1 suite.
//       --size small|large       input size            (default small)
//       --profiler NAME          profiler from the registry
//                                (default cbs; `cbsvm --list-profilers`
//                                or `cbsvm list --profilers` to list)
//       --stride N --samples N   CBS window geometry   (default 3, 16)
//       --personality jikes|j9                         (default jikes)
//       --seed N                                       (default 1)
//       --dcg-shards N           profile repo shards   (default 1)
//       --buffer-capacity N      per-thread sample buf (default 256)
//       --decay-ticks N          decay profile every N ticks (default 0)
//       --decay-factor F         decay multiplier      (default 0.8)
//       --aos                    attach the adaptive optimization
//                                system (NewJikes inline oracle): hot
//                                methods recompile through the
//                                background compile queue
//       --compile-jobs N         compile worker threads (implies
//                                --aos; 0 = compile on the VM thread
//                                at the install point; any N is
//                                byte-identical to 0)
//       --compile-latency-scale F  scale the modelled compile latency
//                                (implies --aos; 0 installs at the
//                                first taken yieldpoint after the
//                                promotion decision)
//       --deopt-threshold PCT    police speculation guards: deoptimize
//                                a method whose assumed callee falls
//                                below PCT of its site's current
//                                profile weight (implies --aos and
//                                enables deoptimization; plain --aos
//                                leaves it off)
//       --max-deopts N           deopts per method before it is pinned
//                                to the conservative no-speculation
//                                plan (implies --aos + deopt; default 3)
//       --osr                    on-stack replacement at yieldpoints
//                                (implies --aos): frames on stale
//                                versions transfer to the newest
//                                installed version at their next taken
//                                loop-header backedge, and deopted
//                                frames transfer off invalidated code
//                                instead of limping at baseline speed
//       --profile-repo DIR       persistent cross-run profile
//                                repository (implies --aos): load the
//                                workload's merged profile from DIR to
//                                warm-start the adaptive system (inline
//                                plan + pre-enqueued hot-method
//                                compiles at cycle 0), and commit this
//                                run's profile back at shutdown. An
//                                entry whose program hash or profiler
//                                personality mismatches is skipped with
//                                a diagnostic (repo.rejected gauge),
//                                never trusted
//       --edges N                top edges to print    (default 15)
//       --save FILE              write the profile (cbsvm-dcg format)
//       --trace FILE             write a Chrome trace_event JSON trace
//       --metrics-json FILE      write the metric registry as JSON
//       --accuracy               also run exhaustively and score the
//                                sampled profile with the overlap metric
//
//   cbsvm stats <workload> [run options] [--json FILE]
//     Execute a workload and dump the full metric registry (every
//     counter, gauge, and histogram) as an aligned table, or as JSON
//     when --json is given (FILE of "-" writes to stdout).
//
//   cbsvm report <workload> [run options] [report options]
//     Execute a workload with the profiler self-observability stack
//     armed — the online quality monitor, the per-component overhead
//     attribution, and the anomaly-triggered flight recorder — then
//     print the convergence timeline, the overhead breakdown, and any
//     flight-recorder dumps. When --aos is active the report also
//     carries an "aos" section (recompilations and compile-queue
//     traffic), and with deoptimization enabled a "deopt" subsection
//     (guard checks/failures, deopt count, pins, recompiles). With
//     --osr the report adds a top-level "osr" section (transfer counts
//     and graveyard reclamation); with --profile-repo a top-level
//     "repo" section (loaded/rejected/runs/committed + diagnostic).
//     Accepts every `run` configuration option above, plus:
//       --every-ticks N          quality window period (default 8)
//       --hot-edges N            hot set size for churn (default 16)
//       --phase-threshold PCT    overlap below this is a phase shift
//                                (default 50)
//       --overhead-budget PCT    overhead above this trips the budget
//                                trigger (default 0 = disabled)
//       --drop-spike N           dropped samples per window that count
//                                as a spike (default 256)
//       --ring N                 flight-recorder event ring (default 256)
//       --json FILE              machine-readable report ("-" = stdout)
//
//   cbsvm disasm <workload> [--size small|large] [--method NAME]
//     Disassemble a workload (or one method of it).
//
//   cbsvm compare <fileA> <fileB>
//     Overlap percentage between two saved profiles.
//
//   cbsvm jsoncheck <file>
//     Validate that a file parses as JSON (used by scripts/check.sh).
//
//   cbsvm fuzz [options]
//     Differential fuzzing campaign: generate seeded random programs
//     and check every invariant oracle; violations are delta-debugged
//     and written as replayable JSON artifacts. Exits nonzero if any
//     oracle was violated.
//       --runs N                 programs to generate  (default 100)
//       --seed N                 first seed            (default 1)
//       --jobs N                 worker threads        (default 1)
//       --oracle ID              check only this oracle
//       --artifact-dir DIR       where violation artifacts go
//       --no-reduce              skip delta-debugging of violations
//       --threads                multi-threaded program shape
//       --long-loops             long-loop program shape (the preset
//                                the osr-stability oracle favours)
//       --max-methods N          method-DAG ceiling
//       --max-steps N            per-method body-step ceiling
//       --max-call-repeat N      main-call repeat ceiling (phase shift)
//       --broken-oracle          also register the deliberately broken
//                                test oracle (exercises the reducer)
//       --metrics-json FILE      write fuzz.* counters as JSON
//       --list-oracles           print oracle ids and exit
//       --replay FILE            re-run one artifact instead of a
//                                campaign; exits 0 iff it reproduces
//
// Unknown or unconsumed arguments are an error: every subcommand calls
// ArgParser::finish() once it has pulled everything it understands.
//
//===----------------------------------------------------------------------===//

#include "aos/AdaptiveSystem.h"
#include "aos/ReportJson.h"
#include "bytecode/Printer.h"
#include "experiments/Experiments.h"
#include "fuzz/Fuzzer.h"
#include "profiling/OverlapMetric.h"
#include "profiling/ProfileCodec.h"
#include "profiling/ProfileIO.h"
#include "profiling/ProfileRepository.h"
#include "profiling/ProfilerRegistry.h"
#include "support/ArgParser.h"
#include "support/Json.h"
#include "support/TablePrinter.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/TraceSink.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace cbs;

namespace {

[[noreturn]] void usageError(const std::string &Message) {
  std::fprintf(stderr, "cbsvm: %s\n", Message.c_str());
  std::fprintf(stderr,
               "usage: cbsvm list | run <workload> [options] | "
               "stats <workload> [options] | report <workload> [options] | "
               "disasm <workload> | compare <a> <b> | jsoncheck <file> | "
               "fuzz [options]\n");
  std::exit(2);
}

using support::ArgParser;

/// The shared strict parser, with errors routed to the driver's usage
/// message.
ArgParser makeParser(int Argc, char **Argv) {
  ArgParser Args(Argc, Argv);
  Args.setErrorHandler([](const std::string &M) { usageError(M); });
  return Args;
}

wl::InputSize parseSize(const std::string &S) {
  if (S == "small")
    return wl::InputSize::Small;
  if (S == "large")
    return wl::InputSize::Large;
  if (S == "steady")
    return wl::InputSize::Steady;
  usageError("unknown size '" + S + "'");
}

/// --metrics-json FILE, shared by `run` and `fuzz`: where to dump the
/// metric registry as JSON ("" = don't).
class MetricsJsonOptionGroup : public support::OptionGroup {
public:
  std::string Path;

  const char *name() const override { return "metrics-json"; }
  void parse(ArgParser &Args) override {
    Path = Args.option("--metrics-json", "");
  }
};

/// Workload + VM configuration shared by `run`, `stats`, and `report`.
struct RunSetup {
  std::string Name;
  wl::InputSize Size = wl::InputSize::Small;
  vm::Personality Pers = vm::Personality::JikesRVM;
  uint64_t Seed = 1;
  bc::Program P;
  vm::VMConfig Config;
  /// --aos (or an option implying it): attach the adaptive system so
  /// hot methods recompile through the background compile queue.
  bool UseAOS = false;
  aos::AOSConfig AOS;
  /// --profile-repo DIR: warm-start from (and commit to) the
  /// cross-run profile repository. Empty = disabled.
  std::string RepoDir;
};

RunSetup parseRunSetup(ArgParser &Args) {
  RunSetup S;
  S.Name = Args.positional("workload name");
  // "phased" is the two-phase convergence-study program — deliberately
  // not part of the Table 1 suite, but the natural input for the
  // quality monitor, so the driver accepts it everywhere a workload
  // name is expected.
  const wl::WorkloadInfo *W = wl::findWorkload(S.Name);
  if (!W && S.Name != "phased")
    usageError("unknown workload '" + S.Name + "' (try 'cbsvm list')");

  S.Size = parseSize(Args.option("--size", "small"));
  // The shared option groups: the VM group (--personality, --seed,
  // --profiler and its knobs, --osr), the AOS group (--aos,
  // --compile-jobs, --compile-latency-scale, --deopt-threshold,
  // --max-deopts), and the profile repository (--profile-repo). Each
  // option is declared once, in its group, for every subcommand.
  vm::VMOptionGroup VMOpts;
  aos::AOSOptionGroup AOSOpts;
  prof::ProfileRepoOptionGroup RepoOpts;
  support::applyGroups(Args, {&VMOpts, &AOSOpts, &RepoOpts});

  S.Config = std::move(VMOpts.Config);
  S.Pers = S.Config.Pers;
  S.Seed = S.Config.Seed;

  S.P = W ? W->Build(S.Size, S.Seed) : wl::buildPhased(S.Size, S.Seed);
  exp::applyJitOnly(S.P, S.Config);

  AOSOpts.finalize(S.Config);
  S.UseAOS = AOSOpts.UseAOS;
  S.AOS = AOSOpts.Config;
  // Warm start is an AOS feature, so the repository implies --aos.
  S.RepoDir = RepoOpts.Dir;
  if (!S.RepoDir.empty())
    S.UseAOS = true;
  return S;
}

/// The adaptive system a command attaches when --aos was given. The
/// oracle must outlive the system and the system must outlive the VM
/// run, so both live together in the command's frame, declared before
/// the VirtualMachine.
struct DriverAOS {
  opt::NewJikesOracle Oracle;
  std::unique_ptr<aos::AdaptiveSystem> System;

  void attach(const RunSetup &S, vm::VirtualMachine &VM) {
    if (!S.UseAOS)
      return;
    System = std::make_unique<aos::AdaptiveSystem>(&Oracle, S.AOS);
    VM.setClient(System.get());
  }
};

/// Driver-side profile-repository wiring shared by run/stats/report.
/// setup() must run before the VirtualMachine is constructed (it plants
/// VMConfig::OnShutdown and the warm-start profile), and the object must
/// outlive the run (the shutdown hook points back into it).
struct DriverRepo {
  std::unique_ptr<prof::ProfileRepository> Repo;
  prof::RepoKey Key;
  prof::RepoLoadResult Load;
  prof::RepoCommitResult Commit;
  bool Enabled = false;

  /// Loads the run's entry (warm-starting the AOS on a hit, printing
  /// the diagnostic on a rejection) and plants the shutdown hook that
  /// commits the run's profile and publishes the repo.* gauges.
  void setup(RunSetup &S) {
    if (S.RepoDir.empty())
      return;
    Enabled = true;
    Repo = std::make_unique<prof::ProfileRepository>(S.RepoDir);
    Key.Workload = S.Name;
    Key.ProgramHash = S.P.contentHash();
    Key.Personality = S.Pers == vm::Personality::JikesRVM ? "jikes" : "j9";
    Load = Repo->load(Key);
    if (Load.ok())
      S.AOS.WarmStart.Profile =
          std::make_shared<const prof::DCGSnapshot>(Load.Entry->Graph);
    else if (Load.Rejected)
      std::fprintf(stderr, "cbsvm: profile-repo: %s\n",
                   Load.Diagnostic.c_str());
    S.Config.OnShutdown = [this](vm::VirtualMachine &VM) {
      // Commit only a cleanly finished run: a trapped/halted/limited
      // run's profile is partial evidence of a program that didn't
      // complete, and persisting it would poison later warm starts.
      if (VM.state() == vm::RunState::Finished) {
        Commit = Repo->commit(Key, VM.profile(), VM.cycles());
        if (!Commit.Error.empty())
          std::fprintf(stderr, "cbsvm: profile-repo: %s\n",
                       Commit.Error.c_str());
      }
      publishGauges(VM);
    };
  }

  /// repo.* gauges, registered at shutdown so every metrics surface
  /// (--metrics-json, stats --json) reports the repository interaction.
  void publishGauges(vm::VirtualMachine &VM) {
    tel::MetricRegistry &R = VM.metricsRegistry();
    R.gauge("repo.loaded") = Load.ok() ? 1 : 0;
    R.gauge("repo.rejected") = Load.Rejected ? 1 : 0;
    R.gauge("repo.runs") = Load.ok() ? Load.Entry->Meta.Runs : 0;
    R.gauge("repo.committed") = Commit.Committed ? 1 : 0;
  }

  /// The report section (emitted only when --profile-repo was given).
  aos::RepoReport report(const RunSetup &S) const {
    aos::RepoReport R;
    R.Present = Enabled;
    R.Dir = S.RepoDir;
    R.Loaded = Load.ok() ? 1 : 0;
    R.Rejected = Load.Rejected ? 1 : 0;
    R.Runs = Load.ok() ? Load.Entry->Meta.Runs : 0;
    R.Committed = Commit.Committed ? 1 : 0;
    R.Diagnostic = Load.Rejected ? Load.Diagnostic : Commit.Error;
    return R;
  }
};

void writeFileOrDie(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out)
    usageError("cannot write '" + Path + "'");
  Out << Contents;
}

int listProfilers() {
  std::printf("profilers (--profiler NAME):\n");
  for (const prof::ProfilerDescriptor &D :
       prof::ProfilerRegistry::instance().all())
    std::printf("  %-12s %s%s\n", D.Name, D.Summary,
                D.Sampling ? " [--stride/--samples apply]" : "");
  return 0;
}

int cmdList(ArgParser &Args) {
  if (Args.flag("--profilers")) {
    Args.finish();
    return listProfilers();
  }
  Args.finish();
  std::printf("built-in workloads (Table 1 suite):\n");
  for (const wl::WorkloadInfo &W : wl::suite())
    std::printf("  %-10s %s\n", W.Name,
                W.Multithreaded ? "(multithreaded)" : "");
  std::printf("see also: the phase-shift program 'phased' (accepted by "
              "run/stats/report), and figure1 / adversary programs via "
              "the library API\n");
  return 0;
}

int cmdRun(ArgParser &Args) {
  RunSetup S = parseRunSetup(Args);
  size_t Edges = Args.optionUInt("--edges", 15, 1, 1 << 20);
  bool WantAccuracy = Args.flag("--accuracy");
  std::string SavePath = Args.option("--save", "");
  std::string TracePath = Args.option("--trace", "");
  MetricsJsonOptionGroup MetricsOpt;
  support::applyGroups(Args, {&MetricsOpt});
  std::string MetricsPath = MetricsOpt.Path;
  Args.finish();

  tel::ChromeTraceSink Sink;
  if (!TracePath.empty())
    S.Config.Trace = &Sink;

  DriverRepo Repo;
  Repo.setup(S);
  DriverAOS AOS;
  vm::VirtualMachine VM(S.P, S.Config);
  AOS.attach(S, VM);
  if (!TracePath.empty()) {
    const bc::Program &P = VM.program();
    Sink.setMethodNamer([&P](uint32_t M) {
      return M < P.numMethods() ? P.qualifiedName(M) : std::string();
    });
  }
  vm::RunState State = VM.run();
  std::printf("%s-%s: %s after %.2fM cycles (%.2fM instructions, %llu "
              "calls, %llu ticks, %llu samples)\n",
              S.Name.c_str(), wl::inputSizeName(S.Size),
              vm::runStateName(State),
              VM.stats().Cycles / 1e6, VM.stats().Instructions / 1e6,
              static_cast<unsigned long long>(VM.stats().CallsExecuted),
              static_cast<unsigned long long>(VM.stats().TimerTicks),
              static_cast<unsigned long long>(VM.stats().SamplesTaken));
  if (State == vm::RunState::Trapped) {
    std::fprintf(stderr, "trap: %s\n", VM.trapMessage().c_str());
    return 1;
  }

  if (S.UseAOS) {
    const aos::AOSStats &A = AOS.System->stats();
    std::printf("aos: %llu installs (%llu to L1, %llu to L2, %llu reopts); "
                "queue: %llu enqueued, %llu coalesced, %llu stale drops, "
                "%llu dropped, depth %zu at exit\n",
                static_cast<unsigned long long>(A.QueueInstalls),
                static_cast<unsigned long long>(A.PromotionsToL1),
                static_cast<unsigned long long>(A.PromotionsToL2),
                static_cast<unsigned long long>(A.Reoptimizations),
                static_cast<unsigned long long>(A.QueueEnqueued),
                static_cast<unsigned long long>(A.QueueCoalesced),
                static_cast<unsigned long long>(A.QueueStaleDrops),
                static_cast<unsigned long long>(A.QueueDropped),
                AOS.System->queueDepth());
    if (AOS.System->warmStarted())
      std::printf("warm start: %llu pre-enqueued, %llu installed; first "
                  "install at cycle %llu\n",
                  static_cast<unsigned long long>(A.WarmEnqueued),
                  static_cast<unsigned long long>(A.WarmInstalls),
                  static_cast<unsigned long long>(A.FirstInstallCycle));
    if (const aos::DeoptController *DC = AOS.System->deoptController()) {
      const aos::DeoptStats &D = DC->stats();
      std::printf("deopt: %llu guard checks, %llu guard failures, %llu "
                  "deopts (%llu phase-shift), %llu pins, %llu stale "
                  "drops, %llu recompiles\n",
                  static_cast<unsigned long long>(D.GuardChecks),
                  static_cast<unsigned long long>(D.GuardFailures),
                  static_cast<unsigned long long>(D.Deopts),
                  static_cast<unsigned long long>(D.PhaseShiftDeopts),
                  static_cast<unsigned long long>(D.ConservativePins),
                  static_cast<unsigned long long>(D.StaleRequestsDropped),
                  static_cast<unsigned long long>(D.Recompiles));
    }
  }

  if (S.Config.EnableOSR) {
    const tel::MetricRegistry &M = VM.metrics();
    auto Counter = [&M](const char *Name) {
      const tel::Counter *C = M.findCounter(Name);
      return C ? static_cast<unsigned long long>(*C) : 0ull;
    };
    auto Gauge = [&M](const char *Name) {
      const tel::Gauge *G = M.findGauge(Name);
      return G ? static_cast<unsigned long long>(*G) : 0ull;
    };
    std::printf("osr: %llu promotions, %llu deopt exits; graveyard: %llu "
                "instructions reclaimed across %llu frees, %llu retained\n",
                Counter("vm.osr_entries"), Counter("vm.osr_exits"),
                Gauge("code.graveyard_reclaimed_instructions"),
                Gauge("code.graveyard_reclaims"),
                Gauge("code.graveyard_instructions"));
  }

  prof::DCGSnapshot DCG = VM.profile();
  std::printf("\n%s", DCG.str(S.P, Edges).c_str());

  if (WantAccuracy) {
    exp::PerfectProfile Perfect = exp::runPerfect(S.P, S.Pers, S.Seed);
    double Overhead =
        100.0 *
        (static_cast<double>(VM.stats().Cycles) -
         static_cast<double>(Perfect.BaseCycles)) /
        static_cast<double>(Perfect.BaseCycles);
    std::printf("\naccuracy (overlap vs exhaustive): %.1f%%   overhead: "
                "%.2f%%\n",
                prof::accuracy(DCG, Perfect.DCG), Overhead);
  }

  if (Repo.Enabled) {
    aos::RepoReport RR = Repo.report(S);
    std::printf("repo: loaded=%llu rejected=%llu runs=%llu committed=%llu "
                "(%s)\n",
                static_cast<unsigned long long>(RR.Loaded),
                static_cast<unsigned long long>(RR.Rejected),
                static_cast<unsigned long long>(RR.Runs),
                static_cast<unsigned long long>(RR.Committed),
                S.RepoDir.c_str());
  }

  if (!SavePath.empty()) {
    writeFileOrDie(SavePath, prof::ProfileCodec::encode(DCG));
    std::printf("\nprofile written to %s\n", SavePath.c_str());
  }
  if (!TracePath.empty()) {
    writeFileOrDie(TracePath, Sink.str());
    std::printf("trace written to %s (%zu events)\n", TracePath.c_str(),
                Sink.numEvents());
  }
  if (!MetricsPath.empty()) {
    writeFileOrDie(MetricsPath, VM.metrics().toJson());
    std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  return 0;
}

int cmdStats(ArgParser &Args) {
  RunSetup S = parseRunSetup(Args);
  std::string JsonPath = Args.option("--json", "");
  Args.finish();

  DriverRepo Repo;
  Repo.setup(S);
  DriverAOS AOS;
  vm::VirtualMachine VM(S.P, S.Config);
  AOS.attach(S, VM);
  vm::RunState State = VM.run();
  if (State == vm::RunState::Trapped) {
    std::fprintf(stderr, "trap: %s\n", VM.trapMessage().c_str());
    return 1;
  }

  if (JsonPath.empty()) {
    std::printf("%s-%s: %s\n\n%s", S.Name.c_str(), wl::inputSizeName(S.Size),
                vm::runStateName(State), VM.metrics().toText().c_str());
  } else if (JsonPath == "-") {
    std::fputs(VM.metrics().toJson().c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    writeFileOrDie(JsonPath, VM.metrics().toJson());
    std::printf("metrics written to %s\n", JsonPath.c_str());
  }
  return 0;
}

int cmdReport(ArgParser &Args) {
  RunSetup S = parseRunSetup(Args);
  S.Config.Profiler.Quality.EveryTicks = static_cast<uint32_t>(
      Args.optionUInt("--every-ticks", 8, 1, UINT32_MAX));
  S.Config.Profiler.Quality.HotEdges =
      Args.optionUInt("--hot-edges", 16, 1, 1 << 20);
  S.Config.Profiler.Quality.PhaseShiftOverlapPct =
      Args.optionDouble("--phase-threshold", 50.0, 0.0, 100.0);

  tel::FlightRecorderConfig RC;
  RC.OverheadBudgetPct =
      Args.optionDouble("--overhead-budget", 0.0, 0.0, 100.0);
  RC.DropSpikeThreshold =
      Args.optionUInt("--drop-spike", 256, 0, UINT64_MAX);
  RC.EventCapacity = Args.optionUInt("--ring", 256, 1, 1 << 20);
  std::string JsonPath = Args.option("--json", "");
  Args.finish();

  tel::FlightRecorder Recorder(RC);
  S.Config.Recorder = &Recorder;

  DriverRepo Repo;
  Repo.setup(S);
  DriverAOS AOS;
  vm::VirtualMachine VM(S.P, S.Config);
  AOS.attach(S, VM);
  vm::RunState State = VM.run();
  Recorder.requestDump("end_of_run", VM.cycles());

  const prof::ProfileQualityMonitor &Monitor = *VM.qualityMonitor();
  const tel::MetricRegistry &Metrics = VM.metrics();
  uint64_t VmCycles = VM.cycles();
  uint64_t OvTotal = VM.overheadCycles();
  auto FractionPct = [VmCycles](uint64_t Cycles) {
    return VmCycles == 0
               ? 0.0
               : 100.0 * static_cast<double>(Cycles) /
                     static_cast<double>(VmCycles);
  };

  if (!JsonPath.empty()) {
    aos::ReportInputs In;
    In.Workload = S.Name;
    In.Size = wl::inputSizeName(S.Size);
    In.Seed = S.Seed;
    In.State = vm::runStateName(State);
    In.VM = &VM;
    In.AOS = S.UseAOS ? AOS.System.get() : nullptr;
    In.Recorder = &Recorder;
    In.Repo = Repo.report(S);
    std::string Json = aos::buildReportJson(In);
    if (JsonPath == "-") {
      std::fputs(Json.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      writeFileOrDie(JsonPath, Json);
      std::printf("report written to %s\n", JsonPath.c_str());
    }
    return State == vm::RunState::Trapped ? 1 : 0;
  }

  std::printf("%s-%s: %s after %.2fM cycles (%llu windows, %llu phase "
              "shifts, %s)\n\n",
              S.Name.c_str(), wl::inputSizeName(S.Size),
              vm::runStateName(State), VmCycles / 1e6,
              static_cast<unsigned long long>(Monitor.windowCount()),
              static_cast<unsigned long long>(Monitor.phaseShiftCount()),
              Monitor.converged() ? "converged" : "not converged");

  std::printf("profile quality timeline (window every %u ticks, phase "
              "threshold %.0f%%):\n",
              Monitor.params().EveryTicks,
              Monitor.params().PhaseShiftOverlapPct);
  TablePrinter Quality;
  Quality.setHeader({"window", "tick", "cycles", "edges", "weight",
                     "overlap%", "hot+", "hot-", "conf%", "shift"});
  for (const prof::QualityWindow &QW : Monitor.history())
    Quality.addRow({std::to_string(QW.Index), std::to_string(QW.Tick),
                    std::to_string(QW.Cycles), std::to_string(QW.Edges),
                    std::to_string(QW.TotalWeight),
                    TablePrinter::formatDouble(QW.OverlapPct, 1),
                    std::to_string(QW.HotNew), std::to_string(QW.HotVanished),
                    TablePrinter::formatDouble(QW.MeanConfidencePct, 1),
                    QW.PhaseShift ? "SHIFT" : ""});
  std::fputs(Quality.render().c_str(), stdout);

  std::printf("\noverhead attribution:\n");
  TablePrinter Overhead;
  Overhead.setHeader({"component", "cycles", "% of run"});
  for (const char *Name : aos::OverheadComponentNames) {
    const tel::Counter *C = Metrics.findCounter(Name);
    uint64_t Cycles = C ? static_cast<uint64_t>(*C) : 0;
    Overhead.addRow({Name, std::to_string(Cycles),
                     TablePrinter::formatDouble(FractionPct(Cycles), 3)});
  }
  Overhead.addSeparator();
  Overhead.addRow({"total", std::to_string(OvTotal),
                   TablePrinter::formatDouble(FractionPct(OvTotal), 3)});
  std::fputs(Overhead.render().c_str(), stdout);

  if (S.UseAOS) {
    const aos::AOSStats &A = AOS.System->stats();
    std::printf("\nadaptive system (compile queue):\n");
    TablePrinter Queue;
    Queue.setHeader({"installs", "to L1", "to L2", "reopts", "enqueued",
                     "coalesced", "stale", "dropped", "depth"});
    Queue.addRow({std::to_string(A.QueueInstalls),
                  std::to_string(A.PromotionsToL1),
                  std::to_string(A.PromotionsToL2),
                  std::to_string(A.Reoptimizations),
                  std::to_string(A.QueueEnqueued),
                  std::to_string(A.QueueCoalesced),
                  std::to_string(A.QueueStaleDrops),
                  std::to_string(A.QueueDropped),
                  std::to_string(AOS.System->queueDepth())});
    std::fputs(Queue.render().c_str(), stdout);
    if (AOS.System->warmStarted())
      std::printf("warm start: %llu pre-enqueued, %llu installed; first "
                  "install at cycle %llu\n",
                  static_cast<unsigned long long>(A.WarmEnqueued),
                  static_cast<unsigned long long>(A.WarmInstalls),
                  static_cast<unsigned long long>(A.FirstInstallCycle));
    if (const aos::DeoptController *DC = AOS.System->deoptController()) {
      const aos::DeoptStats &D = DC->stats();
      std::printf("\ndeoptimization (guard policing):\n");
      TablePrinter Deopt;
      Deopt.setHeader({"guard checks", "failures", "deopts", "phase-shift",
                       "pins", "stale drops", "recompiles"});
      Deopt.addRow({std::to_string(D.GuardChecks),
                    std::to_string(D.GuardFailures),
                    std::to_string(D.Deopts),
                    std::to_string(D.PhaseShiftDeopts),
                    std::to_string(D.ConservativePins),
                    std::to_string(D.StaleRequestsDropped),
                    std::to_string(D.Recompiles)});
      std::fputs(Deopt.render().c_str(), stdout);
    }
  }

  if (S.Config.EnableOSR) {
    auto Counter = [&Metrics](const char *Name) {
      const tel::Counter *C = Metrics.findCounter(Name);
      return C ? static_cast<uint64_t>(*C) : 0;
    };
    auto Gauge = [&Metrics](const char *Name) {
      const tel::Gauge *G = Metrics.findGauge(Name);
      return G ? static_cast<uint64_t>(*G) : 0;
    };
    std::printf("\non-stack replacement:\n");
    TablePrinter Osr;
    Osr.setHeader({"promotions", "deopt exits", "reclaimed insns",
                   "reclaims", "graveyard insns"});
    Osr.addRow({std::to_string(Counter("vm.osr_entries")),
                std::to_string(Counter("vm.osr_exits")),
                std::to_string(Gauge("code.graveyard_reclaimed_instructions")),
                std::to_string(Gauge("code.graveyard_reclaims")),
                std::to_string(Gauge("code.graveyard_instructions"))});
    std::fputs(Osr.render().c_str(), stdout);
  }

  if (Repo.Enabled) {
    aos::RepoReport RR = Repo.report(S);
    std::printf("\nprofile repository (%s):\n"
                "  loaded=%llu rejected=%llu runs=%llu committed=%llu%s%s\n",
                S.RepoDir.c_str(),
                static_cast<unsigned long long>(RR.Loaded),
                static_cast<unsigned long long>(RR.Rejected),
                static_cast<unsigned long long>(RR.Runs),
                static_cast<unsigned long long>(RR.Committed),
                RR.Diagnostic.empty() ? "" : "\n  ",
                RR.Diagnostic.c_str());
  }

  std::printf("\nflight recorder: %llu events seen, %llu anomaly "
              "triggers, %zu dumps\n",
              static_cast<unsigned long long>(Recorder.totalEvents()),
              static_cast<unsigned long long>(Recorder.triggerCount()),
              Recorder.dumps().size());
  for (const tel::FlightRecorder::Dump &D : Recorder.dumps())
    std::printf("  [%s] at cycle %llu: %zu events, %zu windows retained\n",
                D.Trigger.c_str(),
                static_cast<unsigned long long>(D.Cycles), D.Events.size(),
                D.Windows.size());

  if (State == vm::RunState::Trapped) {
    std::fprintf(stderr, "trap: %s\n", VM.trapMessage().c_str());
    return 1;
  }
  return 0;
}

int cmdDisasm(ArgParser &Args) {
  std::string Name = Args.positional("workload name");
  const wl::WorkloadInfo *W = wl::findWorkload(Name);
  if (!W)
    usageError("unknown workload '" + Name + "'");
  bc::Program P =
      W->Build(parseSize(Args.option("--size", "small")), /*Seed=*/1);
  std::string MethodName = Args.option("--method", "");
  Args.finish();
  if (MethodName.empty()) {
    std::fputs(bc::printProgram(P).c_str(), stdout);
    return 0;
  }
  for (bc::MethodId M = 0; M != P.numMethods(); ++M)
    if (P.qualifiedName(M) == MethodName) {
      std::fputs(bc::printMethod(P, M).c_str(), stdout);
      return 0;
    }
  usageError("no method named '" + MethodName + "'");
}

int cmdCompare(ArgParser &Args) {
  auto Load = [](const std::string &Path) {
    std::ifstream In(Path);
    if (!In)
      usageError("cannot read '" + Path + "'");
    std::ostringstream SS;
    SS << In.rdbuf();
    // The codec accepts v1 saves and v2 repository entries alike, so
    // `compare` works on anything the tool ever wrote.
    prof::ProfileCodec::Decoded R = prof::ProfileCodec::decode(SS.str());
    if (!R.ok())
      usageError(Path + ": " + R.Error);
    return *R.Graph;
  };
  std::string PathA = Args.positional("first profile");
  std::string PathB = Args.positional("second profile");
  Args.finish();
  prof::DCGSnapshot A = Load(PathA);
  prof::DCGSnapshot B = Load(PathB);
  std::printf("%-30s %zu edges, weight %llu\n", PathA.c_str(), A.numEdges(),
              static_cast<unsigned long long>(A.totalWeight()));
  std::printf("%-30s %zu edges, weight %llu\n", PathB.c_str(), B.numEdges(),
              static_cast<unsigned long long>(B.totalWeight()));
  std::printf("overlap: %.2f%%\n", prof::overlap(A, B));
  return 0;
}

int cmdFuzz(ArgParser &Args) {
  fuzz::FuzzOptions Options;
  Options.Runs =
      static_cast<unsigned>(Args.optionUInt("--runs", 100, 1, 1u << 20));
  Options.SeedBase = Args.optionUInt("--seed", 1, 0, UINT64_MAX);
  Options.Jobs =
      static_cast<unsigned>(Args.optionUInt("--jobs", 1, 1, 1024));
  Options.OracleFilter = Args.option("--oracle", "");
  Options.ArtifactDir = Args.option("--artifact-dir", "");
  Options.Reduce = !Args.flag("--no-reduce");
  if (Args.flag("--threads"))
    Options.Shape = fuzz::ShapeConfig::threaded();
  if (Args.flag("--long-loops"))
    Options.Shape = fuzz::ShapeConfig::longLoops();
  Options.Shape.MaxMethods = static_cast<uint32_t>(Args.optionUInt(
      "--max-methods", Options.Shape.MaxMethods, 1, 1u << 10));
  Options.Shape.MaxSteps = static_cast<uint32_t>(
      Args.optionUInt("--max-steps", Options.Shape.MaxSteps, 1, 1u << 10));
  Options.Shape.MaxCallRepeat = static_cast<uint32_t>(Args.optionUInt(
      "--max-call-repeat", Options.Shape.MaxCallRepeat, 1, 1u << 10));
  bool WithBroken = Args.flag("--broken-oracle");
  bool ListOracles = Args.flag("--list-oracles");
  MetricsJsonOptionGroup MetricsOpt;
  support::applyGroups(Args, {&MetricsOpt});
  std::string MetricsPath = MetricsOpt.Path;
  std::string ReplayPath = Args.option("--replay", "");
  Args.finish();

  fuzz::OracleRegistry Registry = fuzz::OracleRegistry::builtin();
  if (WithBroken)
    fuzz::addBrokenOracleForTesting(Registry);

  if (ListOracles) {
    for (const auto &O : Registry.all())
      std::printf("%-20s %s\n", O->id(), O->describe());
    return 0;
  }

  if (!ReplayPath.empty()) {
    std::ifstream In(ReplayPath);
    if (!In)
      usageError("cannot read '" + ReplayPath + "'");
    std::ostringstream SS;
    SS << In.rdbuf();
    std::string Error;
    fuzz::Artifact A = fuzz::parseArtifact(SS.str(), Error);
    if (!Error.empty())
      usageError(ReplayPath + ": " + Error);
    std::string Message = fuzz::replayArtifact(A, Registry, Error);
    if (!Error.empty())
      usageError(ReplayPath + ": " + Error);
    if (Message.empty()) {
      std::printf("%s: violation of '%s' did NOT reproduce\n",
                  ReplayPath.c_str(), A.OracleId.c_str());
      return 1;
    }
    std::printf("%s: reproduced violation of '%s' under seed %llu: %s\n",
                ReplayPath.c_str(), A.OracleId.c_str(),
                static_cast<unsigned long long>(A.Seed), Message.c_str());
    return 0;
  }

  tel::MetricRegistry Metrics;
  std::ostringstream Log;
  fuzz::FuzzReport Report = fuzz::runFuzz(Options, Registry, &Metrics, &Log);
  std::fputs(Log.str().c_str(), stdout);
  if (!MetricsPath.empty()) {
    writeFileOrDie(MetricsPath, Metrics.toJson());
    std::printf("metrics written to %s\n", MetricsPath.c_str());
  }
  return Report.clean() ? 0 : 1;
}

int cmdJsonCheck(ArgParser &Args) {
  std::string Path = Args.positional("json file");
  Args.finish();
  std::ifstream In(Path);
  if (!In)
    usageError("cannot read '" + Path + "'");
  std::ostringstream SS;
  SS << In.rdbuf();
  json::JsonParseResult R = json::parseJson(SS.str());
  if (!R.Value) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), R.Error.c_str());
    return 1;
  }
  std::printf("%s: valid JSON\n", Path.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usageError("missing command");
  std::string Command = Argv[1];
  if (Command == "--list-profilers")
    return listProfilers();
  ArgParser Args = makeParser(Argc - 1, Argv + 1);
  if (Command == "list")
    return cmdList(Args);
  if (Command == "run")
    return cmdRun(Args);
  if (Command == "stats")
    return cmdStats(Args);
  if (Command == "report")
    return cmdReport(Args);
  if (Command == "disasm")
    return cmdDisasm(Args);
  if (Command == "compare")
    return cmdCompare(Args);
  if (Command == "jsoncheck")
    return cmdJsonCheck(Args);
  if (Command == "fuzz")
    return cmdFuzz(Args);
  usageError("unknown command '" + Command + "'");
}
