#!/usr/bin/env bash
# Tier-1 verification plus an observability smoke test, a differential
# fuzzing smoke stage, a deoptimization stage (guard policing must
# repair the phased workload's stale speculation and the quality
# timeline must recover; the forced-invalidation storm oracle must
# come back clean over 25 seeds), a self-observability report check
# (the quality monitor must flag the phased workload's hot-set swap
# and the overhead breakdown must sum to its total), an on-stack
# replacement stage (frames must transfer onto replacement versions at
# backedge yieldpoints, the code-cache graveyard must be fully
# reclaimed by end of run, --osr runs must stay byte-identical across
# compile worker counts, and the osr-stability oracle must come back
# clean over 25 long-loop seeds), a profile-repository warm-start
# stage (a second run over the same repository must load the first
# run's committed entry and reach its first optimized install strictly
# earlier, and repository bytes plus metrics must not depend on the
# compile worker count), a
# ThreadSanitizer pass over the
# parallel experiment engine, the sharded profile repository, and the
# background compile pipeline, and determinism checks: --jobs 8
# produces byte-identical JSON to --jobs 1, --dcg-shards 8 produces
# byte-identical profiles, metrics, and self-observability reports to
# --dcg-shards 1, and --compile-jobs 4 produces byte-identical
# profiles and metrics to --compile-jobs 0.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment:
#   CBSVM_SANITIZE=address|undefined|...  configure the build with
#       -DCBSVM_SANITIZE (fresh configure only; an existing build dir
#       keeps its cached setting).
#   CBSVM_SKIP_TSAN=1  skip the ThreadSanitizer stage (it maintains a
#       second build tree at <build-dir>-tsan).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

CMAKE_ARGS=()
if [[ -n "${CBSVM_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=("-DCBSVM_SANITIZE=${CBSVM_SANITIZE}")
fi

echo "== configure =="
cmake -B "$BUILD" -S . "${CMAKE_ARGS[@]}"

echo "== build =="
cmake --build "$BUILD" -j

echo "== tests: fast tier =="
# The quick pre-commit tier first: fail here and we skip the soaks.
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)" -L fast)

echo "== tests: full suite =="
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

echo "== observability smoke =="
TRACE=$(mktemp /tmp/cbsvm-trace.XXXXXX.json)
METRICS=$(mktemp /tmp/cbsvm-metrics.XXXXXX.json)
STATS=$(mktemp /tmp/cbsvm-stats.XXXXXX.json)
JOBS1=$(mktemp /tmp/cbsvm-jobs1.XXXXXX.json)
JOBS8=$(mktemp /tmp/cbsvm-jobs8.XXXXXX.json)
SHARD1=$(mktemp /tmp/cbsvm-shard1.XXXXXX.dcg)
SHARD8=$(mktemp /tmp/cbsvm-shard8.XXXXXX.dcg)
SHARD1M=$(mktemp /tmp/cbsvm-shard1m.XXXXXX.json)
SHARD8M=$(mktemp /tmp/cbsvm-shard8m.XXXXXX.json)
REPORTA=$(mktemp /tmp/cbsvm-reporta.XXXXXX.json)
REPORTB=$(mktemp /tmp/cbsvm-reportb.XXXXXX.json)
CJOBS0=$(mktemp /tmp/cbsvm-cjobs0.XXXXXX.dcg)
CJOBS4=$(mktemp /tmp/cbsvm-cjobs4.XXXXXX.dcg)
CJOBS0M=$(mktemp /tmp/cbsvm-cjobs0m.XXXXXX.json)
CJOBS4M=$(mktemp /tmp/cbsvm-cjobs4m.XXXXXX.json)
CJOBS0R=$(mktemp /tmp/cbsvm-cjobs0r.XXXXXX.json)
CJOBS4R=$(mktemp /tmp/cbsvm-cjobs4r.XXXXXX.json)
AOSREPORT=$(mktemp /tmp/cbsvm-aosreport.XXXXXX.json)
trap 'rm -f "$TRACE" "$METRICS" "$STATS" "$JOBS1" "$JOBS8" \
  "$SHARD1" "$SHARD8" "$SHARD1M" "$SHARD8M" "$REPORTA" "$REPORTB" \
  "$CJOBS0" "$CJOBS4" "$CJOBS0M" "$CJOBS4M" "$CJOBS0R" "$CJOBS4R" \
  "$AOSREPORT" "${DEOPTREPORT:-}" "${DEOPTFUZZ1:-}" "${DEOPTFUZZ8:-}" \
  "${FUZZ1:-}" "${FUZZ8:-}" "${OSRREPORT:-}" "${OSRJOBS1:-}" \
  "${OSRJOBS8:-}" "${OSRJOBS1M:-}" "${OSRJOBS8M:-}" "${OSRFUZZ1:-}" \
  "${OSRFUZZ8:-}" "${WARM1:-}" "${WARM2:-}" "${RJ1A:-}" "${RJ1B:-}" \
  "${RJ8A:-}" "${RJ8B:-}"; \
  rm -rf "${FUZZDIR:-}" "${REPODIR:-}" "${REPOJOBS1:-}" "${REPOJOBS8:-}"' EXIT

CBSVM="$BUILD/tools/cbsvm"
"$CBSVM" run compress --trace "$TRACE" --metrics-json "$METRICS"
"$CBSVM" jsoncheck "$TRACE"
"$CBSVM" jsoncheck "$METRICS"
"$CBSVM" stats compress --json "$STATS" >/dev/null
"$CBSVM" jsoncheck "$STATS"

# The trace and the metrics registry must agree on the sample count.
python3 - "$TRACE" "$METRICS" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
metrics = json.load(open(sys.argv[2]))
samples = sum(1 for e in trace["traceEvents"] if e["name"] == "sample")
ticks = sum(1 for e in trace["traceEvents"] if e["name"] == "timer_tick")
assert samples == metrics["counters"]["vm.samples_taken"], \
    (samples, metrics["counters"]["vm.samples_taken"])
assert ticks == metrics["counters"]["vm.timer_ticks"], \
    (ticks, metrics["counters"]["vm.timer_ticks"])
print(f"trace/metrics agree: {samples} samples, {ticks} ticks")
EOF

echo "== fuzz smoke =="
# A short differential-fuzzing campaign: 25 seeds through every builtin
# oracle must come back clean, and the parallel campaign must report
# exactly what the serial one does.
FUZZ1=$(mktemp /tmp/cbsvm-fuzz1.XXXXXX.txt)
FUZZ8=$(mktemp /tmp/cbsvm-fuzz8.XXXXXX.txt)
FUZZDIR=$(mktemp -d /tmp/cbsvm-fuzz-artifacts.XXXXXX)
"$CBSVM" fuzz --runs 25 --seed 1 --jobs 1 | tee "$FUZZ1"
"$CBSVM" fuzz --runs 25 --seed 1 --jobs 8 >"$FUZZ8"
cmp "$FUZZ1" "$FUZZ8"
echo "fuzz jobs=1 and jobs=8 reports are byte-identical"

# The artifact pipeline end to end: a deliberately broken oracle must
# produce a reduced, replayable artifact, and the replay must reproduce
# the violation (exit 0 means reproduced).
if "$CBSVM" fuzz --runs 1 --seed 1 --broken-oracle --oracle broken \
    --artifact-dir "$FUZZDIR" >/dev/null; then
  echo "broken oracle failed to flag anything" >&2
  exit 1
fi
ARTIFACT=$(ls "$FUZZDIR"/broken-seed*.json | head -n 1)
"$CBSVM" jsoncheck "$ARTIFACT"
"$CBSVM" fuzz --broken-oracle --replay "$ARTIFACT"
echo "broken-oracle artifact replays and reproduces"

echo "== parallel determinism =="
# One sweep serial, one fanned out over 8 workers: the JSON reports must
# be byte-identical (the engine commits results in grid-index order).
CBSVM_RUNS=1 "$BUILD/bench/table2a_jikes_sweep" --json "$JOBS1" --jobs 1 >/dev/null
CBSVM_RUNS=1 "$BUILD/bench/table2a_jikes_sweep" --json "$JOBS8" --jobs 8 >/dev/null
cmp "$JOBS1" "$JOBS8"
echo "jobs=1 and jobs=8 sweeps are byte-identical"

echo "== shard determinism =="
# The same run through a 1-shard and an 8-shard repository must save the
# same profile and report the same metrics (snapshots are canonically
# ordered, weights are commutative sums).
"$CBSVM" run jess --dcg-shards 1 --save "$SHARD1" --metrics-json "$SHARD1M" >/dev/null
"$CBSVM" run jess --dcg-shards 8 --save "$SHARD8" --metrics-json "$SHARD8M" >/dev/null
cmp "$SHARD1" "$SHARD8"
cmp "$SHARD1M" "$SHARD8M"
echo "dcg-shards=1 and dcg-shards=8 runs are byte-identical"

echo "== background compile determinism =="
# The deterministic-install contract: compile worker threads only
# pre-compute pure compile results, installs stay pinned to virtual
# time, so a 4-worker run is byte-identical to a VM-thread-only run.
"$CBSVM" run jess --aos --compile-jobs 0 --save "$CJOBS0" --metrics-json "$CJOBS0M" >/dev/null
"$CBSVM" run jess --aos --compile-jobs 4 --save "$CJOBS4" --metrics-json "$CJOBS4M" >/dev/null
cmp "$CJOBS0" "$CJOBS4"
cmp "$CJOBS0M" "$CJOBS4M"
"$CBSVM" report jess --aos --compile-jobs 0 --json "$CJOBS0R" >/dev/null
"$CBSVM" report jess --aos --compile-jobs 4 --json "$CJOBS4R" >/dev/null
cmp "$CJOBS0R" "$CJOBS4R"
echo "compile-jobs=0 and compile-jobs=4 runs are byte-identical"

# Install-point re-validation: a long modelled latency on the phased
# workload must leave plans stale by install time, and the report must
# surface the queue traffic.
"$CBSVM" report phased --aos --compile-latency-scale 25 \
  --json "$AOSREPORT" >/dev/null
"$CBSVM" jsoncheck "$AOSREPORT"
python3 - "$AOSREPORT" "$CJOBS0M" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
queue = report["aos"]["queue"]
assert queue["installs"] >= 1, queue
assert queue["stale_drops"] >= 1, queue
assert queue["enqueued"] >= queue["installs"], queue
metrics = json.load(open(sys.argv[2]))
gauges = metrics["gauges"]
for name in ("depth", "enqueued", "installs", "stale_drops",
             "coalesced", "dropped"):
    assert f"aos.queue.{name}" in gauges, name
assert gauges["aos.queue.installs"] >= 1, gauges
print(f"compile queue: {queue['installs']} installs, "
      f"{queue['stale_drops']} stale drops re-validated at install")
EOF

echo "== deoptimization =="
# Guard policing end to end on the phased workload: the quality monitor
# must flag the hot-set swap, the phase-shift trigger must deoptimize
# the stale speculative versions and recompile them, and the quality
# timeline must recover after the repair (the last window's overlap
# beats the post-shift trough).
DEOPTREPORT=$(mktemp /tmp/cbsvm-deopt.XXXXXX.json)
"$CBSVM" report phased --deopt-threshold 40 --decay-ticks 8 \
  --phase-threshold 70 --json "$DEOPTREPORT" >/dev/null
"$CBSVM" jsoncheck "$DEOPTREPORT"
python3 - "$DEOPTREPORT" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
deopt = report["aos"]["deopt"]
assert report["quality"]["phaseShifts"] >= 1, report["quality"]
assert deopt["count"] >= 1, deopt
assert deopt["phaseShiftDeopts"] >= 1, deopt
assert deopt["recompiles"] >= 1, deopt
overlap = [w["overlapPct"] for w in report["quality"]["windows"]]
trough = min(overlap)
assert overlap[-1] > trough, overlap
print(f"deopt: {deopt['count']} deopts ({deopt['phaseShiftDeopts']} "
      f"phase-shift), {deopt['recompiles']} recompiles; overlap "
      f"recovered {trough:.1f} -> {overlap[-1]:.1f}")
EOF

# The forced-invalidation storm over 25 generated programs, and the
# campaign report must not depend on the worker count.
DEOPTFUZZ1=$(mktemp /tmp/cbsvm-deoptfuzz1.XXXXXX.txt)
DEOPTFUZZ8=$(mktemp /tmp/cbsvm-deoptfuzz8.XXXXXX.txt)
"$CBSVM" fuzz --oracle deopt-storm-stability --runs 25 --seed 1 \
  --jobs 1 | tee "$DEOPTFUZZ1"
"$CBSVM" fuzz --oracle deopt-storm-stability --runs 25 --seed 1 \
  --jobs 8 >"$DEOPTFUZZ8"
cmp "$DEOPTFUZZ1" "$DEOPTFUZZ8"
echo "deopt-storm-stability fuzz jobs=1 and jobs=8 are byte-identical"

echo "== on-stack replacement =="
# OSR end to end on the phased workload: a fast compile pipeline plus a
# policing threshold that kills mid-loop speculation makes frames
# transfer onto replacement versions at backedge yieldpoints, and the
# pin-tracked graveyard must be fully reclaimed once the last pinned
# frame leaves (the report runs the VM to completion, so zero retained
# graveyard instructions is an exact end-of-run invariant).
OSRREPORT=$(mktemp /tmp/cbsvm-osr.XXXXXX.json)
OSR_ARGS=(phased --osr --compile-latency-scale 0.2 --deopt-threshold 60)
"$CBSVM" report "${OSR_ARGS[@]}" --json "$OSRREPORT" >/dev/null
"$CBSVM" jsoncheck "$OSRREPORT"
python3 - "$OSRREPORT" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
osr = report["osr"]
assert osr["entries"] >= 1, osr
assert osr["graveyardReclaimedInstructions"] > 0, osr
assert osr["graveyardReclaims"] >= 1, osr
assert osr["graveyardInstructions"] == 0, osr
print(f"osr: {osr['entries']} promotions, {osr['exits']} deopt exits; "
      f"{osr['graveyardReclaimedInstructions']} graveyard instructions "
      f"reclaimed across {osr['graveyardReclaims']} frees, none retained")
EOF

# Frame transfer decisions happen on the VM thread at taken yieldpoints
# in virtual time, so --osr runs must stay byte-identical across
# compile worker counts.
OSRJOBS1=$(mktemp /tmp/cbsvm-osrjobs1.XXXXXX.dcg)
OSRJOBS8=$(mktemp /tmp/cbsvm-osrjobs8.XXXXXX.dcg)
OSRJOBS1M=$(mktemp /tmp/cbsvm-osrjobs1m.XXXXXX.json)
OSRJOBS8M=$(mktemp /tmp/cbsvm-osrjobs8m.XXXXXX.json)
"$CBSVM" run "${OSR_ARGS[@]}" --compile-jobs 1 \
  --save "$OSRJOBS1" --metrics-json "$OSRJOBS1M" >/dev/null
"$CBSVM" run "${OSR_ARGS[@]}" --compile-jobs 8 \
  --save "$OSRJOBS8" --metrics-json "$OSRJOBS8M" >/dev/null
cmp "$OSRJOBS1" "$OSRJOBS8"
cmp "$OSRJOBS1M" "$OSRJOBS8M"
echo "osr compile-jobs=1 and compile-jobs=8 runs are byte-identical"

# The osr-stability oracle over 25 long-loop programs (loops long
# enough for installs to land mid-frame), and the campaign report must
# not depend on the worker count.
OSRFUZZ1=$(mktemp /tmp/cbsvm-osrfuzz1.XXXXXX.txt)
OSRFUZZ8=$(mktemp /tmp/cbsvm-osrfuzz8.XXXXXX.txt)
"$CBSVM" fuzz --oracle osr-stability --long-loops --runs 25 --seed 1 \
  --jobs 1 | tee "$OSRFUZZ1"
"$CBSVM" fuzz --oracle osr-stability --long-loops --runs 25 --seed 1 \
  --jobs 8 >"$OSRFUZZ8"
cmp "$OSRFUZZ1" "$OSRFUZZ8"
echo "osr-stability fuzz jobs=1 and jobs=8 are byte-identical"

echo "== self-observability report =="
# The monitored phase-shift workload: the quality monitor must see the
# hot-set swap (>= 1 phase_shift dump), the overhead components must
# sum to the reported total fraction, and two seeded runs — one through
# an 8-shard repository — must produce byte-identical reports.
REPORT_ARGS=(report phased --decay-ticks 4 --decay-factor 0.5 \
  --every-ticks 4 --phase-threshold 75)
"$CBSVM" "${REPORT_ARGS[@]}" --json "$REPORTA" >/dev/null
"$CBSVM" "${REPORT_ARGS[@]}" --dcg-shards 8 --json "$REPORTB" >/dev/null
"$CBSVM" jsoncheck "$REPORTA"
cmp "$REPORTA" "$REPORTB"
echo "report runs (dcg-shards=1 vs 8) are byte-identical"
python3 - "$REPORTA" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
dumps = [d["trigger"] for d in report["flightRecorder"]["dumps"]]
assert "phase_shift" in dumps, dumps
windows = report["quality"]["windows"]
assert windows and report["quality"]["phaseShifts"] >= 1
overhead = report["overhead"]
total = sum(c["fractionPct"] for c in overhead["components"])
assert abs(total - overhead["totalFractionPct"]) < 1e-9, \
    (total, overhead["totalFractionPct"])
print(f"report: {len(windows)} windows, {len(dumps)} dumps "
      f"({', '.join(dumps)}), overhead {total:.3f}% fully attributed")
EOF

echo "== profile repository warm start =="
# The persistent repository end to end: the first monitored run over a
# fresh repository is a miss that commits its profile; the second run
# warm-starts from that entry and must reach its first optimized
# install strictly earlier than the cold run did (the time-to-peak
# benefit the repository exists to buy).
REPODIR=$(mktemp -d /tmp/cbsvm-repo.XXXXXX)
WARM1=$(mktemp /tmp/cbsvm-warm1.XXXXXX.json)
WARM2=$(mktemp /tmp/cbsvm-warm2.XXXXXX.json)
"$CBSVM" report phased --aos --profile-repo "$REPODIR" --json "$WARM1" >/dev/null
"$CBSVM" report phased --aos --profile-repo "$REPODIR" --json "$WARM2" >/dev/null
"$CBSVM" jsoncheck "$WARM1"
"$CBSVM" jsoncheck "$WARM2"
python3 - "$WARM1" "$WARM2" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert cold["repo"]["loaded"] == 0, cold["repo"]
assert cold["repo"]["committed"] == 1, cold["repo"]
assert warm["repo"]["loaded"] == 1, warm["repo"]
assert warm["repo"]["rejected"] == 0, warm["repo"]
assert warm["repo"]["runs"] == 1, warm["repo"]
assert warm["repo"]["committed"] == 1, warm["repo"]
cold_first = cold["aos"]["queue"]["firstInstallCycle"]
warm_first = warm["aos"]["queue"]["firstInstallCycle"]
assert cold_first > 0, cold["aos"]["queue"]
assert 0 < warm_first < cold_first, (cold_first, warm_first)
assert "warm" not in cold["aos"], cold["aos"].keys()
assert warm["aos"]["warm"]["enqueued"] >= 1, warm["aos"]["warm"]
print(f"warm start: first install {cold_first} -> {warm_first} cycles "
      f"({warm['aos']['warm']['enqueued']} methods pre-enqueued)")
EOF

# Repository bytes are part of the determinism contract: two cold+warm
# run pairs through separate fresh repositories — one at --compile-jobs
# 1, one at --compile-jobs 8 — must leave byte-identical repository
# entries and byte-identical metrics at every step.
REPOJOBS1=$(mktemp -d /tmp/cbsvm-repojobs1.XXXXXX)
REPOJOBS8=$(mktemp -d /tmp/cbsvm-repojobs8.XXXXXX)
RJ1A=$(mktemp /tmp/cbsvm-rj1a.XXXXXX.json)
RJ1B=$(mktemp /tmp/cbsvm-rj1b.XXXXXX.json)
RJ8A=$(mktemp /tmp/cbsvm-rj8a.XXXXXX.json)
RJ8B=$(mktemp /tmp/cbsvm-rj8b.XXXXXX.json)
"$CBSVM" run jess --profile-repo "$REPOJOBS1" --compile-jobs 1 \
  --metrics-json "$RJ1A" >/dev/null
"$CBSVM" run jess --profile-repo "$REPOJOBS1" --compile-jobs 1 \
  --metrics-json "$RJ1B" >/dev/null
"$CBSVM" run jess --profile-repo "$REPOJOBS8" --compile-jobs 8 \
  --metrics-json "$RJ8A" >/dev/null
"$CBSVM" run jess --profile-repo "$REPOJOBS8" --compile-jobs 8 \
  --metrics-json "$RJ8B" >/dev/null
cmp "$REPOJOBS1"/jess.dcg "$REPOJOBS8"/jess.dcg
cmp "$RJ1A" "$RJ8A"
cmp "$RJ1B" "$RJ8B"
echo "profile-repo compile-jobs=1 and compile-jobs=8 runs are byte-identical"

if [[ "${CBSVM_SKIP_TSAN:-}" != "1" ]]; then
  echo "== thread sanitizer: parallel engine + sharded DCG + compile queue + OSR + repository =="
  TSAN_BUILD="${BUILD}-tsan"
  cmake -B "$TSAN_BUILD" -S . -DCBSVM_SANITIZE=thread
  cmake --build "$TSAN_BUILD" -j \
    --target ParallelRunnerTest DCGConcurrencyTest CompileQueueTest OSRTest \
             ProfileRepositoryTest
  (cd "$TSAN_BUILD" && CBSVM_JOBS=8 \
    ctest --output-on-failure -R '^(ParallelRunner|DCGConcurrency|CompileQueue|Osr|ProfileRepository)')
fi

echo "== all checks passed =="
