#!/usr/bin/env bash
# Tier-1 verification plus an observability smoke test.
#
# Usage: scripts/check.sh [build-dir]
#
# Environment:
#   CBSVM_SANITIZE=address|undefined|...  configure the build with
#       -DCBSVM_SANITIZE (fresh configure only; an existing build dir
#       keeps its cached setting).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

CMAKE_ARGS=()
if [[ -n "${CBSVM_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=("-DCBSVM_SANITIZE=${CBSVM_SANITIZE}")
fi

echo "== configure =="
cmake -B "$BUILD" -S . "${CMAKE_ARGS[@]}"

echo "== build =="
cmake --build "$BUILD" -j

echo "== tests =="
(cd "$BUILD" && ctest --output-on-failure -j "$(nproc)")

echo "== observability smoke =="
TRACE=$(mktemp /tmp/cbsvm-trace.XXXXXX.json)
METRICS=$(mktemp /tmp/cbsvm-metrics.XXXXXX.json)
STATS=$(mktemp /tmp/cbsvm-stats.XXXXXX.json)
trap 'rm -f "$TRACE" "$METRICS" "$STATS"' EXIT

CBSVM="$BUILD/tools/cbsvm"
"$CBSVM" run compress --trace "$TRACE" --metrics-json "$METRICS"
"$CBSVM" jsoncheck "$TRACE"
"$CBSVM" jsoncheck "$METRICS"
"$CBSVM" stats compress --json "$STATS" >/dev/null
"$CBSVM" jsoncheck "$STATS"

# The trace and the metrics registry must agree on the sample count.
python3 - "$TRACE" "$METRICS" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
metrics = json.load(open(sys.argv[2]))
samples = sum(1 for e in trace["traceEvents"] if e["name"] == "sample")
ticks = sum(1 for e in trace["traceEvents"] if e["name"] == "timer_tick")
assert samples == metrics["counters"]["vm.samples_taken"], \
    (samples, metrics["counters"]["vm.samples_taken"])
assert ticks == metrics["counters"]["vm.timer_ticks"], \
    (ticks, metrics["counters"]["vm.timer_ticks"])
print(f"trace/metrics agree: {samples} samples, {ticks} ticks")
EOF

echo "== all checks passed =="
